#include "cme/solver.hh"

#include <algorithm>
#include <string>
#include <tuple>

#include "common/logging.hh"
#include "common/stats.hh"
#include "common/strutil.hh"

namespace mvp::cme
{

namespace
{

/**
 * Per-thread working buffers of the solver. The analysis object is
 * shared by every worker of a parallel sweep, so the scratch cannot
 * live in the object; per-thread buffers keep the hot path
 * allocation-free exactly as the member buffers did single-threaded.
 */
struct SolverScratch
{
    std::vector<OpId> canonical;              ///< canonical-set buffer
    std::vector<const std::int64_t *> lines;  ///< per-position streams
    std::vector<std::int64_t> conflicts;      ///< isMiss interference
};

SolverScratch &
solverScratch()
{
    static thread_local SolverScratch scratch;
    return scratch;
}

} // namespace

CmeAnalysis::CmeAnalysis(const ir::LoopNest &nest, CmeParams params,
                         std::shared_ptr<StreamCache> streams)
    : nest_(nest), params_(params), streams_(std::move(streams))
{
    mvp_assert(params_.minSamples > 0 && params_.maxSamples >=
               params_.minSamples, "bad CME sampling parameters");
    if (!streams_)
        streams_ = std::make_shared<StreamCache>(nest_);
    mvp_assert(&streams_->loop() == &nest_,
               "stream cache bound to a different loop");
}

std::string
CmeAnalysis::samplingKey(const std::vector<OpId> &set, OpId op,
                         const CacheGeom &geom)
{
    std::string key;
    key.reserve(16 + set.size() * 4);
    key += std::to_string(geom.capacityBytes);
    key += '/';
    key += std::to_string(geom.lineBytes);
    key += '/';
    key += std::to_string(geom.assoc);
    key += ':';
    key += std::to_string(op);
    key += '|';
    for (OpId o : set) {
        key += std::to_string(o);
        key += ',';
    }
    return key;
}

bool
CmeAnalysis::isMiss(const std::int64_t *const *lines, std::size_t nops,
                    std::size_t ref_pos, std::int64_t point,
                    const CacheGeom &geom,
                    std::vector<std::int64_t> &conflicts)
{
    points_.fetch_add(1, std::memory_order_relaxed);
    const std::int64_t num_sets = geom.numSets();
    mvp_assert(num_sets > 0, "cache with no sets");

    const std::int64_t target_line = lines[ref_pos][point];
    const std::int64_t target_set = target_line % num_sets;

    // Distinct interfering lines seen so far in the target set.
    conflicts.clear();
    conflicts.reserve(static_cast<std::size_t>(geom.assoc));

    // Walk the interleaved access stream backwards: position-minor,
    // point-major, exactly the order the un-cached walk produced by
    // decrementing the IV vector in place.
    std::int64_t cur_point = point;
    auto cur_pos = static_cast<std::int64_t>(ref_pos);
    int walked = 0;

    for (;;) {
        if (--cur_pos < 0) {
            if (cur_point == 0)
                return true;   // start of the stream: cold miss
            --cur_point;
            cur_pos = static_cast<std::int64_t>(nops) - 1;
        }
        if (++walked > params_.maxWalk)
            return true;   // reuse beyond the window: treat as miss
        const std::int64_t line =
            lines[static_cast<std::size_t>(cur_pos)][cur_point];
        if (line == target_line) {
            // Reuse source found: the replacement equation fires iff the
            // interference already filled the set.
            return static_cast<int>(conflicts.size()) >= geom.assoc;
        }
        if (line % num_sets == target_set &&
            std::find(conflicts.begin(), conflicts.end(), line) ==
                conflicts.end()) {
            conflicts.push_back(line);
            if (static_cast<int>(conflicts.size()) >= geom.assoc)
                return true;   // set already refilled: guaranteed miss
        }
    }
}

detail::RatioValue
CmeAnalysis::solveRatio(const std::vector<OpId> &set, OpId op,
                        const CacheGeom &geom)
{
    const detail::QueryKeyRef ref{detail::queryHash(geom, op, set), &geom,
                                  op, &set};
    lookups_.fetch_add(1, std::memory_order_relaxed);
    if (detail::RatioValue hit; memo_.lookup(ref, &hit))
        return hit;
    queries_.fetch_add(1, std::memory_order_relaxed);

    const auto pos_it = std::find(set.begin(), set.end(), op);
    mvp_assert(pos_it != set.end(), "op not in reference set");
    const auto ref_pos =
        static_cast<std::size_t>(pos_it - set.begin());

    SolverScratch &scratch = solverScratch();
    // One shard-locked fetch per set position; from here the sampling
    // walk touches nothing but flat arrays.
    scratch.lines.clear();
    for (OpId o : set)
        scratch.lines.push_back(
            streams_->lines(o, geom.lineBytes).lines.data());
    const std::int64_t *const *lines = scratch.lines.data();
    const std::size_t nops = set.size();

    detail::RatioValue value;
    const std::int64_t points = streams_->points();
    if (points <= params_.maxSamples) {
        // Exhaustive mode: evaluate every iteration point.
        std::int64_t misses = 0;
        for (std::int64_t p = 0; p < points; ++p)
            misses += isMiss(lines, nops, ref_pos, p, geom,
                             scratch.conflicts)
                          ? 1
                          : 0;
        value.ratio =
            static_cast<double>(misses) / static_cast<double>(points);
    } else {
        // The sampling seed is a pure function of the query key, so two
        // threads racing on the same fresh query draw identical sample
        // sequences and compute identical ratios.
        Rng rng(params_.seed ^ fnv1a(samplingKey(set, op, geom)));
        RunningStat stat;
        while (static_cast<int>(stat.count()) < params_.maxSamples) {
            const auto p = static_cast<std::int64_t>(
                rng.nextBounded(static_cast<std::uint64_t>(points)));
            stat.add(isMiss(lines, nops, ref_pos, p, geom,
                            scratch.conflicts)
                         ? 1.0
                         : 0.0);
            if (static_cast<int>(stat.count()) >= params_.minSamples &&
                stat.ciHalfWidth() <= params_.ciTarget)
                break;
        }
        value.ratio = stat.mean();
        value.ciHalfWidth = stat.ciHalfWidth();
    }

    return memo_.tryInsert(ref, value);
}

double
CmeAnalysis::missRatio(const std::vector<OpId> &set, OpId op,
                       const CacheGeom &geom)
{
    return estimateRatio(set, op, geom).ratio;
}

RatioEstimate
CmeAnalysis::estimateRatio(const std::vector<OpId> &set, OpId op,
                           const CacheGeom &geom)
{
    mvp_assert(nest_.op(op).isMemory(), "missRatio of a non-memory op");
    return solveRatio(
        detail::canonicalInto(solverScratch().canonical, set, op), op,
        geom);
}

double
CmeAnalysis::missesPerIteration(const std::vector<OpId> &set,
                                const CacheGeom &geom)
{
    const std::vector<OpId> &s =
        detail::canonicalInto(solverScratch().canonical, set);
    double total = 0.0;
    for (std::size_t i = 0; i < s.size(); ++i)
        total += solveRatio(s, s[i], geom).ratio;
    return total;
}

std::vector<CmeMemoEntry>
CmeAnalysis::exportMemo() const
{
    std::vector<CmeMemoEntry> out;
    memo_.forEach([&](const detail::QueryKey &key,
                      const detail::RatioValue &value) {
        out.push_back({key.geom, key.op, key.set, value});
    });
    std::sort(out.begin(), out.end(),
              [](const CmeMemoEntry &a, const CmeMemoEntry &b) {
                  const auto ka = std::tie(a.geom.capacityBytes,
                                           a.geom.lineBytes, a.geom.assoc,
                                           a.op, a.set);
                  const auto kb = std::tie(b.geom.capacityBytes,
                                           b.geom.lineBytes, b.geom.assoc,
                                           b.op, b.set);
                  return ka < kb;
              });
    return out;
}

void
CmeAnalysis::importMemo(const std::vector<CmeMemoEntry> &entries)
{
    for (const CmeMemoEntry &entry : entries) {
        const detail::QueryKeyRef ref{
            detail::queryHash(entry.geom, entry.op, entry.set),
            &entry.geom, entry.op, &entry.set};
        memo_.tryInsert(ref, entry.value);
    }
}

} // namespace mvp::cme
