/**
 * @file
 * Plain-text table renderer used by the figure/table reproduction benches.
 *
 * The paper's evaluation is presented as bar charts; the harness renders
 * the same series as aligned text tables, one row per bar.
 */

#ifndef MVP_COMMON_TABLE_HH
#define MVP_COMMON_TABLE_HH

#include <string>
#include <vector>

namespace mvp
{

/**
 * Column-aligned text table with an optional title and header rule.
 */
class TextTable
{
  public:
    /** Create a table with the given column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Append a row; must have exactly as many cells as headers. */
    void addRow(std::vector<std::string> cells);

    /** Append a horizontal separator rule. */
    void addRule();

    /** Optional title printed above the table. */
    void setTitle(std::string title) { title_ = std::move(title); }

    /** Render the table; every column is padded to its widest cell. */
    std::string render() const;

    /** Number of data rows added so far (rules excluded). */
    std::size_t rows() const;

  private:
    struct Row
    {
        bool is_rule = false;
        std::vector<std::string> cells;
    };

    std::string title_;
    std::vector<std::string> headers_;
    std::vector<Row> rows_;
};

} // namespace mvp

#endif // MVP_COMMON_TABLE_HH
