#include "machine/presets.hh"

#include "common/logging.hh"
#include "common/strutil.hh"

namespace mvp
{

namespace
{

MachineConfig
baseConfig()
{
    MachineConfig cfg;
    cfg.totalCacheBytes = 8192;
    cfg.cacheLineBytes = 32;
    cfg.cacheAssoc = 1;
    cfg.mshrEntries = 10;
    cfg.latCacheHit = 2;
    cfg.latMainMemory = 10;
    return cfg;
}

} // namespace

MachineConfig
makeUnified()
{
    MachineConfig cfg = baseConfig();
    cfg.name = "unified";
    cfg.nClusters = 1;
    cfg.intFusPerCluster = 4;
    cfg.fpFusPerCluster = 4;
    cfg.memFusPerCluster = 4;
    cfg.regsPerCluster = 64;
    // A single cluster performs no register communication; memory buses
    // still connect the (single) cache to main memory.
    cfg.nRegBuses = 0;
    cfg.unboundedRegBuses = true;
    cfg.nMemBuses = 1;
    cfg.memBusLatency = 1;
    return cfg;
}

MachineConfig
makeTwoCluster()
{
    MachineConfig cfg = baseConfig();
    cfg.name = "2-cluster";
    cfg.nClusters = 2;
    cfg.intFusPerCluster = 2;
    cfg.fpFusPerCluster = 2;
    cfg.memFusPerCluster = 2;
    cfg.regsPerCluster = 32;
    cfg.nRegBuses = 2;
    cfg.regBusLatency = 1;
    cfg.nMemBuses = 1;
    cfg.memBusLatency = 1;
    return cfg;
}

MachineConfig
makeFourCluster()
{
    MachineConfig cfg = baseConfig();
    cfg.name = "4-cluster";
    cfg.nClusters = 4;
    cfg.intFusPerCluster = 1;
    cfg.fpFusPerCluster = 1;
    cfg.memFusPerCluster = 1;
    cfg.regsPerCluster = 16;
    cfg.nRegBuses = 2;
    cfg.regBusLatency = 1;
    cfg.nMemBuses = 1;
    cfg.memBusLatency = 1;
    return cfg;
}

MachineConfig
makeConfig(int clusters)
{
    switch (clusters) {
      case 1: return makeUnified();
      case 2: return makeTwoCluster();
      case 4: return makeFourCluster();
      default:
        mvp_fatal("no Table-1 preset with ", clusters, " clusters");
    }
}

MachineConfig
withUnboundedBuses(MachineConfig cfg, Cycle reg_bus_latency,
                   Cycle mem_bus_latency)
{
    cfg.unboundedRegBuses = true;
    cfg.regBusLatency = reg_bus_latency;
    cfg.unboundedMemBuses = true;
    cfg.memBusLatency = mem_bus_latency;
    cfg.name += strprintf("/LRB=%lld/LMB=%lld/unbounded",
                          static_cast<long long>(reg_bus_latency),
                          static_cast<long long>(mem_bus_latency));
    return cfg;
}

MachineConfig
withLimitedBuses(MachineConfig cfg, int n_mem_buses, Cycle mem_bus_latency)
{
    cfg.unboundedRegBuses = false;
    cfg.nRegBuses = 2;
    cfg.regBusLatency = 1;
    cfg.unboundedMemBuses = false;
    cfg.nMemBuses = n_mem_buses;
    cfg.memBusLatency = mem_bus_latency;
    cfg.name += strprintf("/NMB=%d/LMB=%lld", n_mem_buses,
                          static_cast<long long>(mem_bus_latency));
    return cfg;
}

} // namespace mvp
