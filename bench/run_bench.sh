#!/usr/bin/env bash
# Run the scheduler/CME microbenchmarks and emit BENCH_sched.json at the
# repo root so successive PRs can track the performance trajectory.
#
# Usage:
#   bench/run_bench.sh [--filter REGEX] [extra google-benchmark flags]
#
# --filter REGEX limits the run to matching benchmarks (and merges only
# their numbers into BENCH_sched.json), e.g.
#
#   bench/run_bench.sh --filter 'BM_Schedule(Exact|Verify)'
#
# runs and gates the exact-backend benches in isolation.
#
# Environment:
#   BUILD_DIR       build tree (default: <repo>/build)
#   BENCH_FILTER    --benchmark_filter regex (default: all benchmarks;
#                   --filter wins when both are given)
#   BENCH_MIN_TIME  --benchmark_min_time seconds (default: 2)
#
# The output is standard google-benchmark JSON plus one extra top-level
# key, "seed_baseline", carrying the pre-optimisation reference numbers
# of the benchmarks the build is gated on. An existing seed_baseline in
# BENCH_sched.json is preserved across re-runs.

set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-$ROOT/build}"
OUT="$ROOT/BENCH_sched.json"

# --filter REGEX (anywhere on the command line; remaining args pass
# through to google-benchmark untouched).
ARGS=()
while [ $# -gt 0 ]; do
    case "$1" in
      --filter)
        [ $# -ge 2 ] || { echo "--filter needs a regex" >&2; exit 2; }
        BENCH_FILTER="$2"
        shift 2
        ;;
      --filter=*)
        BENCH_FILTER="${1#--filter=}"
        shift
        ;;
      *)
        ARGS+=("$1")
        shift
        ;;
    esac
done
set -- ${ARGS+"${ARGS[@]}"}

if [ ! -f "$BUILD_DIR/CMakeCache.txt" ]; then
    cmake -B "$BUILD_DIR" -S "$ROOT" -DMVP_BENCH=ON
fi
# Always rebuild so the numbers describe the checked-out tree, never a
# stale binary.
cmake --build "$BUILD_DIR" -j --target micro_sched

TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

"$BUILD_DIR/micro_sched" \
    --benchmark_filter="${BENCH_FILTER:-.*}" \
    --benchmark_min_time="${BENCH_MIN_TIME:-2}" \
    --benchmark_out="$TMP" \
    --benchmark_out_format=json \
    "$@"

python3 - "$TMP" "$OUT" <<'EOF'
import json
import sys

fresh_path, out_path = sys.argv[1], sys.argv[2]
with open(fresh_path) as f:
    fresh = json.load(f)

# Merge into the existing record: a filtered run updates only the
# benchmarks it measured, and the recorded pre-optimisation baseline
# survives every re-run.
try:
    with open(out_path) as f:
        prev = json.load(f)
except (OSError, ValueError):
    prev = {}

if "seed_baseline" in prev:
    fresh["seed_baseline"] = prev["seed_baseline"]
measured = {b["name"] for b in fresh.get("benchmarks", [])}
kept = [b for b in prev.get("benchmarks", [])
        if b.get("name") not in measured]
fresh["benchmarks"] = kept + fresh.get("benchmarks", [])

with open(out_path, "w") as f:
    json.dump(fresh, f, indent=2)
    f.write("\n")
EOF

echo "wrote $OUT"
