/**
 * @file
 * The multiVLIWprocessor machine model.
 *
 * Captures everything Table 1 of the paper fixes plus the bus parameters
 * the evaluation sweeps: cluster count, per-cluster FU mix and register
 * file, register buses (count/latency, possibly unbounded), memory buses
 * (count/latency, possibly unbounded), the distributed L1 geometry and
 * the operation latencies.
 */

#ifndef MVP_MACHINE_MACHINE_HH
#define MVP_MACHINE_MACHINE_HH

#include <cstdint>
#include <string>

#include "common/types.hh"
#include "ir/opcode.hh"

namespace mvp
{

/**
 * Geometry of one (per-cluster) data cache.
 */
struct CacheGeom
{
    std::int64_t capacityBytes = 4096;
    int lineBytes = 32;
    int assoc = 1;   ///< 1 = direct-mapped (the paper's configuration)

    /** Number of sets. */
    std::int64_t numSets() const
    {
        return capacityBytes / (static_cast<std::int64_t>(lineBytes) * assoc);
    }

    /** Line-aligned address -> line number. */
    std::int64_t lineOf(Addr addr) const
    {
        return static_cast<std::int64_t>(addr) / lineBytes;
    }

    /** Cache set of an address. */
    std::int64_t setOf(Addr addr) const { return lineOf(addr) % numSets(); }

    bool operator==(const CacheGeom &other) const = default;
};

/**
 * Complete machine configuration.
 */
struct MachineConfig
{
    std::string name = "machine";

    /** @name Clusters and functional units */
    /// @{
    int nClusters = 1;
    int intFusPerCluster = 4;
    int fpFusPerCluster = 4;
    int memFusPerCluster = 4;
    int regsPerCluster = 64;
    /// @}

    /** @name Register buses (inter-cluster register communication) */
    /// @{
    int nRegBuses = 2;
    Cycle regBusLatency = 1;
    bool unboundedRegBuses = false;
    /// @}

    /** @name Memory buses (caches <-> caches/main memory) */
    /// @{
    int nMemBuses = 1;
    Cycle memBusLatency = 1;
    bool unboundedMemBuses = false;
    /// @}

    /** @name Distributed L1 data cache */
    /// @{
    std::int64_t totalCacheBytes = 8192;  ///< split evenly across clusters
    int cacheLineBytes = 32;              ///< 8 elements of 4 bytes
    int cacheAssoc = 1;                   ///< direct-mapped
    int mshrEntries = 10;                 ///< non-blocking cache depth
    /// @}

    /** @name Latencies (cycles) */
    /// @{
    Cycle latCacheHit = 2;      ///< local L1 access
    Cycle latMainMemory = 10;   ///< DRAM access after the bus transfer
    Cycle latInt = 1;           ///< integer ALU ops
    Cycle latIntMul = 2;        ///< integer multiply
    Cycle latIntDiv = 6;        ///< integer divide
    Cycle latFp = 2;            ///< FP add/sub/mul/madd (motivating example)
    Cycle latFpDiv = 6;         ///< FP divide
    Cycle latStore = 1;         ///< store issue -> retire
    /// @}

    /** Latency of @p op assuming a local-cache hit for loads. */
    Cycle opLatency(ir::Opcode op) const;

    /**
     * The binding-prefetch latency used when a load is scheduled with the
     * cache-miss latency: LAT_cache + LAT_membus + LAT_mainmemory (§4.3).
     */
    Cycle missLatency() const
    {
        return latCacheHit + memBusLatency + latMainMemory;
    }

    /** Per-cluster share of the L1 capacity. */
    std::int64_t cacheBytesPerCluster() const
    {
        return totalCacheBytes / nClusters;
    }

    /** Per-cluster cache geometry. */
    CacheGeom clusterCacheGeom() const
    {
        return CacheGeom{cacheBytesPerCluster(), cacheLineBytes, cacheAssoc};
    }

    /** Functional units of class @p type per cluster. */
    int fusPerCluster(ir::FuType type) const;

    /** Total functional units of class @p type across clusters. */
    int totalFus(ir::FuType type) const
    {
        return fusPerCluster(type) * nClusters;
    }

    /** Total issue width (all FU slots, all clusters). */
    int issueWidth() const
    {
        return (intFusPerCluster + fpFusPerCluster + memFusPerCluster) *
               nClusters;
    }

    /** True when more than one cluster exists. */
    bool isClustered() const { return nClusters > 1; }

    /** fatal() on inconsistent configurations. */
    void validate() const;

    /** One-line summary for reports. */
    std::string summary() const;
};

} // namespace mvp

#endif // MVP_MACHINE_MACHINE_HH
