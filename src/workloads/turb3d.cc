/**
 * @file
 * turb3d-like suite: turbulence simulation built on FFTs.
 *
 * 125.turb3d spends its cycles in radix FFT butterflies and transpose
 * copies. The defining memory behaviour is power-of-two offsets and
 * strides: butterfly partners sit 2^k elements apart, which in a
 * direct-mapped cache maps entire groups onto few sets; the real/
 * imaginary planes sit 8 KB apart and thrash when interleaved.
 */

#include "workloads/workloads.hh"

#include "ir/builder.hh"

namespace mvp::workloads
{

namespace
{

using namespace mvp::ir;

constexpr std::int64_t N = 1024;     // points per transform
constexpr std::int64_t N_FFT = 10;   // transforms per run
constexpr Addr BASE = 0x1C0000;
constexpr Addr STRIDE_8K = 0x2000;

/** Radix-2 butterfly, partner offset 32 elements. */
LoopNest
loopButterfly()
{
    LoopNestBuilder b("turb3d.butterfly");
    b.loop("t", 0, N_FFT);
    b.loop("j", 0, N / 2 - 32);
    const auto RE = b.arrayAt("RE", {N}, BASE);
    const auto IM = b.arrayAt("IM", {N}, BASE + STRIDE_8K);

    const auto re0 = b.load(RE, {affineVar(1, 1, 0)}, "re0");
    const auto re1 = b.load(RE, {affineVar(1, 1, 32)}, "re1");
    const auto im0 = b.load(IM, {affineVar(1, 1, 0)}, "im0");
    const auto im1 = b.load(IM, {affineVar(1, 1, 32)}, "im1");

    const auto rsum = b.op(Opcode::FAdd, {use(re0), use(re1)}, "rsum");
    const auto rdif = b.op(Opcode::FSub, {use(re0), use(re1)}, "rdif");
    const auto isum = b.op(Opcode::FAdd, {use(im0), use(im1)}, "isum");
    const auto idif = b.op(Opcode::FSub, {use(im0), use(im1)}, "idif");
    b.store(RE, {affineVar(1, 1, 0)}, use(rsum), "sre0");
    b.store(RE, {affineVar(1, 1, 32)}, use(rdif), "sre1");
    b.store(IM, {affineVar(1, 1, 0)}, use(isum), "sim0");
    b.store(IM, {affineVar(1, 1, 32)}, use(idif), "sim1");
    return b.build();
}

/** Twiddle multiply: complex rotation with table lookups. */
LoopNest
loopTwiddle()
{
    LoopNestBuilder b("turb3d.twiddle");
    b.loop("t", 0, N_FFT);
    b.loop("j", 0, N / 2);
    const auto RE = b.arrayAt("RE", {N}, BASE);
    const auto IM = b.arrayAt("IM", {N}, BASE + STRIDE_8K);
    const auto WR = b.arrayAt("WR", {N / 2}, BASE + 2 * STRIDE_8K);
    const auto WI = b.arrayAt("WI", {N / 2}, BASE + 3 * STRIDE_8K + 0x980);

    const auto re = b.load(RE, {affineVar(1, 1, 0)}, "re");
    const auto im = b.load(IM, {affineVar(1, 1, 0)}, "im");
    const auto wr = b.load(WR, {affineVar(1, 1, 0)}, "wr");
    const auto wi = b.load(WI, {affineVar(1, 1, 0)}, "wi");

    const auto rr = b.op(Opcode::FMul, {use(re), use(wr)}, "rr");
    const auto ii = b.op(Opcode::FMul, {use(im), use(wi)}, "ii");
    const auto nr = b.op(Opcode::FSub, {use(rr), use(ii)}, "nr");
    const auto ri = b.op(Opcode::FMul, {use(re), use(wi)}, "ri");
    const auto ni = b.op(Opcode::FMadd, {use(im), use(wr), use(ri)},
                         "ni");
    b.store(RE, {affineVar(1, 1, 0)}, use(nr), "sre");
    b.store(IM, {affineVar(1, 1, 0)}, use(ni), "sim");
    return b.build();
}

/**
 * Strided transpose gather: stride-16 reads (one access per line,
 * maximum conflict pressure) into contiguous writes.
 */
LoopNest
loopTranspose()
{
    LoopNestBuilder b("turb3d.transpose");
    b.loop("t", 0, N_FFT);
    b.loop("j", 0, N / 16);
    const auto RE = b.arrayAt("RE", {N}, BASE);
    const auto TMP = b.arrayAt("TMP", {N / 16 + 1},
                               BASE + 4 * STRIDE_8K + 0xE40);

    const auto g = b.load(RE, {affineVar(1, 16, 0)}, "g");
    const auto g2 = b.load(RE, {affineVar(1, 16, 8)}, "g2");
    const auto s = b.op(Opcode::FAdd, {use(g), use(g2)}, "s");
    b.store(TMP, {affineVar(1, 1, 0)}, use(s), "st");
    return b.build();
}

/** Energy accumulation (reduction with complex magnitude). */
LoopNest
loopEnergy()
{
    LoopNestBuilder b("turb3d.energy");
    b.loop("t", 0, N_FFT);
    b.loop("j", 0, N / 2);
    const auto RE = b.arrayAt("RE", {N}, BASE);
    const auto IM = b.arrayAt("IM", {N}, BASE + STRIDE_8K);

    const auto re = b.load(RE, {affineVar(1, 2, 0)}, "re");
    const auto im = b.load(IM, {affineVar(1, 2, 0)}, "im");
    const auto m = b.op(Opcode::FMul, {use(re), use(re)}, "m");
    const auto mag = b.op(Opcode::FMadd, {use(im), use(im), use(m)},
                          "mag");
    b.op(Opcode::FAdd, {use(mag), use(b.nextOpId(), 1)}, "acc");
    return b.build();
}

} // namespace

Benchmark
makeTurb3d()
{
    Benchmark bench;
    bench.name = "turb3d";
    bench.loops.push_back(loopButterfly());
    bench.loops.push_back(loopTwiddle());
    bench.loops.push_back(loopTranspose());
    bench.loops.push_back(loopEnergy());
    return bench;
}

} // namespace mvp::workloads
