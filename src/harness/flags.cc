#include "harness/flags.hh"

#include <cstdlib>

#include "common/logging.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "sched/backend.hh"
#include "sched/scheduler.hh"

namespace mvp::harness
{

std::string
stripValueFlag(int &argc, char **argv, const std::string &flag,
               const char *value_desc)
{
    std::string value;
    const std::string prefix = flag + '=';
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == flag) {
            if (i + 1 >= argc)
                mvp_fatal(flag, " needs ", value_desc);
            value = argv[++i];
        } else if (arg.rfind(prefix, 0) == 0) {
            value = arg.substr(prefix.size());
        } else {
            argv[out++] = argv[i];
            continue;
        }
        if (value.empty())
            mvp_fatal(flag, " wants ", value_desc);
    }
    argc = out;
    return value;
}

int
parseJobsFlag(int &argc, char **argv)
{
    const std::string value =
        stripValueFlag(argc, argv, "--jobs", "a worker count");
    if (value.empty())
        return 0;
    const int jobs = std::atoi(value.c_str());
    if (jobs < 1)
        mvp_fatal("--jobs wants an integer >= 1, got '", value, "'");
    return jobs;
}

std::string
parseLocalityFlag(int &argc, char **argv)
{
    return stripValueFlag(argc, argv, "--locality", "a provider name");
}

std::vector<std::string>
parseWorkloadsFlag(int &argc, char **argv)
{
    const std::string value = stripValueFlag(
        argc, argv, "--workloads", "a comma-separated workload list");
    std::vector<std::string> names;
    std::size_t pos = 0;
    while (pos < value.size()) {
        std::size_t end = value.find(',', pos);
        if (end == std::string::npos)
            end = value.size();
        if (end > pos)
            names.push_back(value.substr(pos, end - pos));
        pos = end + 1;
    }
    // An empty *result* means "all builtin suites" downstream; a flag
    // that was given but names nothing (e.g. "--workloads ,") must
    // not silently widen the sweep to everything.
    if (!value.empty() && names.empty())
        mvp_fatal("--workloads '", value, "' names no workloads");
    return names;
}

std::int64_t
parseTimeBudgetFlag(int &argc, char **argv)
{
    const std::string value = stripValueFlag(
        argc, argv, "--time-budget-ms", "a millisecond count");
    if (value.empty())
        return sched::DEFAULT_TIME_BUDGET_MS;
    char *end = nullptr;
    const long long ms = std::strtoll(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0')
        mvp_fatal("--time-budget-ms wants an integer, got '", value,
                  "'");
    return ms;
}

std::string
parseExactBackendFlag(int &argc, char **argv)
{
    const std::string value = stripValueFlag(
        argc, argv, "--exact-backend", "a scheduler backend name");
    if (!value.empty() &&
        !sched::BackendRegistry::instance().has(value)) {
        std::string list;
        for (const std::string &n :
             sched::BackendRegistry::instance().names())
            list += (list.empty() ? "" : ", ") + n;
        mvp_fatal("--exact-backend '", value,
                  "' is not a registered scheduler backend (known: ",
                  list, ")");
    }
    return value;
}

std::int64_t
parseSatConflictsFlag(int &argc, char **argv)
{
    const std::string value = stripValueFlag(
        argc, argv, "--sat-conflicts", "a conflict count");
    if (value.empty())
        return 0;
    char *end = nullptr;
    const long long cap = std::strtoll(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0' || cap < 0)
        mvp_fatal("--sat-conflicts wants an integer >= 0, got '", value,
                  "'");
    return cap;
}

bool
parseLogLevelFlag(int &argc, char **argv)
{
    const std::string value =
        stripValueFlag(argc, argv, "--log-level", "a verbosity name");
    if (value.empty())
        return false;
    if (value == "quiet")
        setLogLevel(LogLevel::Quiet);
    else if (value == "normal")
        setLogLevel(LogLevel::Normal);
    else if (value == "verbose")
        setLogLevel(LogLevel::Verbose);
    else if (value == "debug")
        setLogLevel(LogLevel::Debug);
    else
        mvp_fatal("--log-level wants quiet|normal|verbose|debug, got '",
                  value, "'");
    return true;
}

void
parseObservabilityFlags(int &argc, char **argv)
{
    parseLogLevelFlag(argc, argv);

    // --metrics takes an *optional* value, which stripValueFlag cannot
    // express (it fatals on a valueless flag), so scan by hand: match
    // the exact flag or its `=` form, never a `--metrics-foo`.
    bool metrics_on = false;
    std::string metrics_path;
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--metrics") {
            metrics_on = true;
        } else if (arg.rfind("--metrics=", 0) == 0) {
            metrics_on = true;
            metrics_path = arg.substr(sizeof "--metrics=" - 1);
        } else {
            argv[out++] = argv[i];
        }
    }
    argc = out;

    const std::string trace_path =
        stripValueFlag(argc, argv, "--trace", "an output file");

    if (metrics_on)
        obs::metricsInit(metrics_path);
    if (!trace_path.empty())
        obs::traceInit(trace_path);
    if (metrics_on || !trace_path.empty()) {
        // One finish hook for both: reports land after the binary's
        // last sweep, whatever its exit path through main.
        std::atexit([] {
            obs::metricsFinish();
            obs::traceFinish();
        });
    }
}

bool
stripBoolFlag(int &argc, char **argv, const std::string &flag)
{
    bool seen = false;
    int w = 1;
    for (int i = 1; i < argc; ++i) {
        if (flag == argv[i]) {
            seen = true;
            continue;
        }
        argv[w++] = argv[i];
    }
    argc = w;
    return seen;
}

void
rejectUnknownFlags(int argc, char **argv,
                   const std::vector<std::string> &known)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0)
            continue;
        const std::string bare = arg.substr(0, arg.find('='));
        std::string list;
        for (const std::string &k : known)
            list += (list.empty() ? "" : ", ") + k;
        mvp_fatal("unknown flag '", bare, "' (known: ", list, ")");
    }
}

} // namespace mvp::harness
