/**
 * @file
 * Reproduction of Figure 6: realistic inter-cluster networks.
 *
 * Fixed: 2 register buses at 1-cycle latency. Swept, as in the paper:
 *  - number of memory buses NMB in {1, 2}
 *  - memory-bus latency LMB in {1, 4}
 *  - scheduler Baseline vs RMCA, thresholds {1.00, 0.75, 0.25, 0.00}
 *  - 2-cluster and 4-cluster machines.
 *
 * Headline claim: at the most effective threshold (0.00) RMCA beats the
 * Baseline by about 5% on 2 clusters and about 20% on 4 clusters,
 * because fewer local misses mean fewer accesses competing for the
 * scarce memory buses.
 *
 * The whole grid runs as one sharded runSuiteSweep (see fig5); output
 * is byte-identical at any --jobs count.
 *
 * Usage: fig6_limited [--jobs N]
 */

#include <cstdio>
#include <string>
#include <vector>

#include "common/strutil.hh"
#include "common/table.hh"
#include "harness/experiment.hh"
#include "harness/flags.hh"
#include "machine/presets.hh"

using namespace mvp;
using harness::RunConfig;

namespace
{

const double THRESHOLDS[] = {1.00, 0.75, 0.25, 0.00};

} // namespace

int
main(int argc, char **argv)
{
    harness::parseObservabilityFlags(argc, argv);
    harness::ParallelDriver driver(harness::parseJobsFlag(argc, argv));
    const std::string locality = harness::parseLocalityFlag(argc, argv);
    const std::int64_t time_budget =
        harness::parseTimeBudgetFlag(argc, argv);
    harness::rejectUnknownFlags(argc, argv,
                                {"--jobs", "--locality",
                                 "--time-budget-ms", "--log-level",
                                 "--metrics", "--trace"});
    harness::Workbench bench;

    struct Row
    {
        MachineConfig machine;
        int clusters;   ///< 0 = unified
        int nmb;
        Cycle lmb;
        const char *sched;
        double thr;
        bool ruleAfter = false;
    };
    std::vector<Row> rows;

    for (double thr : THRESHOLDS)
        rows.push_back({makeUnified(), 0, 0, 0, "rmca", thr});
    rows.back().ruleAfter = true;

    for (int clusters : {2, 4}) {
        for (int nmb : {1, 2}) {
            for (Cycle lmb : {1, 4}) {
                const auto machine =
                    withLimitedBuses(makeConfig(clusters), nmb, lmb);
                for (const char *sched : {"baseline", "rmca"})
                    for (double thr : THRESHOLDS)
                        rows.push_back(
                            {machine, clusters, nmb, lmb, sched, thr});
                rows.back().ruleAfter = true;
            }
        }
    }

    std::vector<RunConfig> configs;
    configs.reserve(rows.size());
    for (const Row &row : rows) {
        RunConfig cfg;
        cfg.machine = row.machine;
        cfg.backend = row.sched;
        cfg.locality = locality;
        cfg.threshold = row.thr;
        cfg.timeBudgetMs = time_budget;
        configs.push_back(cfg);
    }
    const auto results =
        harness::runSuiteSweep(bench, configs, {}, driver);

    // Normaliser: unified machine, threshold 1.00 (the first row).
    const double norm = static_cast<double>(results[0].total());

    TextTable table({"config", "NMB", "LMB", "sched", "thr", "compute",
                     "stall", "total", "norm"});
    table.setTitle("Figure 6: limited buses (2 reg buses @1cy), cycles "
                   "normalised to unified@1.00");
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row &row = rows[i];
        const auto &res = results[i];
        table.addRow(
            {row.clusters == 0
                 ? "unified"
                 : std::to_string(row.clusters) + "-cluster",
             row.clusters == 0 ? "-" : std::to_string(row.nmb),
             row.clusters == 0 ? "-" : std::to_string(row.lmb),
             row.sched == std::string("rmca") ? "RMCA" : "Baseline",
             fmtDouble(row.thr, 2), std::to_string(res.compute),
             std::to_string(res.stall), std::to_string(res.total()),
             fmtDouble(static_cast<double>(res.total()) / norm, 3)});
        if (row.ruleAfter)
            table.addRule();
    }
    std::printf("%s\n", table.render().c_str());

    // Headline: RMCA advantage at threshold 0.00, averaged over the
    // four bus configurations of the figure — read off the grid above.
    std::printf("RMCA advantage over Baseline at threshold 0.00 "
                "(paper: ~5%% on 2 clusters, ~20%% on 4):\n");
    for (int clusters : {2, 4}) {
        double ratio_sum = 0;
        int n = 0;
        for (std::size_t i = 0; i < rows.size(); ++i) {
            const Row &row = rows[i];
            if (row.clusters != clusters || row.thr != 0.0 ||
                row.sched != std::string("baseline"))
                continue;
            // The matching RMCA row shares the bus configuration; it
            // sits THRESHOLDS-many rows later in the grid order.
            const auto &rb = results[i];
            const auto &rr = results[i + std::size(THRESHOLDS)];
            ratio_sum += static_cast<double>(rb.total()) /
                         static_cast<double>(rr.total());
            ++n;
        }
        std::printf("  %d-cluster: Baseline/RMCA = %.3f  (advantage "
                    "%.1f%%)\n",
                    clusters, ratio_sum / n,
                    100.0 * (ratio_sum / n - 1.0));
    }
    return 0;
}
