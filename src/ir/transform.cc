#include "ir/transform.hh"

#include "common/logging.hh"

namespace mvp::ir
{

LoopNest
unrollInner(const LoopNest &nest, int factor)
{
    mvp_assert(factor >= 1, "unroll factor must be >= 1");
    if (factor == 1)
        return nest;
    const auto trip = nest.innerTripCount();
    if (trip % factor != 0)
        mvp_fatal("unrollInner: trip count ", trip,
                  " of '", nest.name(), "' not divisible by ", factor);

    LoopNest out(nest.name() + ".u" + std::to_string(factor));

    // Loops: the innermost step grows by the factor.
    const std::size_t inner = nest.innerDepth();
    for (std::size_t d = 0; d < nest.depth(); ++d) {
        LoopDim dim = nest.loops()[d];
        if (d == inner)
            dim.step *= factor;
        out.addLoop(dim);
    }

    for (const auto &arr : nest.arrays())
        out.addArray(arr);

    const std::int64_t old_step = nest.innerLoop().step;
    const auto n_ops = static_cast<OpId>(nest.size());

    // Copy id of op v in unroll instance u.
    auto copy_id = [&](OpId v, int u) {
        return static_cast<OpId>(u * n_ops + v);
    };

    for (int u = 0; u < factor; ++u) {
        for (const auto &op : nest.ops()) {
            Operation copy;
            copy.opcode = op.opcode;
            copy.name = op.name.empty()
                            ? ""
                            : op.name + "." + std::to_string(u);

            for (const Operand &in : op.inputs) {
                if (in.isLiveIn()) {
                    copy.inputs.push_back(liveIn());
                    continue;
                }
                // Old iteration k_old = k_new*factor + u; the operand
                // reads the value from k_old - d.
                const int src = u - in.distance;
                const int src_copy =
                    ((src % factor) + factor) % factor;
                const int new_dist = (factor - 1 - src) / factor;
                copy.inputs.push_back(
                    use(copy_id(in.producer, src_copy), new_dist));
            }

            if (op.memRef) {
                AffineRef ref = *op.memRef;
                for (auto &expr : ref.index) {
                    const std::int64_t c = expr.coeff(inner);
                    if (c != 0)
                        expr.constant += c * old_step * u;
                }
                copy.memRef = std::move(ref);
            }
            out.addOp(std::move(copy));
        }
    }

    out.validate();
    return out;
}

} // namespace mvp::ir
