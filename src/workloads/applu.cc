/**
 * @file
 * applu-like suite: SSOR solver for the Navier-Stokes equations.
 *
 * 110.applu sweeps lower/upper triangular systems over a 3D grid. Its
 * signature patterns are: memory-carried recurrences (the j-sweep of
 * BLTS consumes values stored one iteration earlier), five solution
 * streams read together in the RHS computation, and Jacobian
 * evaluations with dense per-point reuse. The five streams are spread
 * at 8 KB multiples so that a register-only partition thrashes.
 */

#include "workloads/workloads.hh"

#include "ir/builder.hh"

namespace mvp::workloads
{

namespace
{

using namespace mvp::ir;

constexpr std::int64_t N_I = 20;
constexpr std::int64_t N_J = 60;
constexpr std::int64_t DIM_I = N_I + 2;
constexpr std::int64_t DIM_J = N_J + 2;
constexpr Addr BASE = 0x180000;
constexpr Addr STRIDE_8K = 0x2000;

AffineExpr
at(std::size_t depth, std::int64_t ofs)
{
    return affineVar(depth, 1, ofs);
}

/** RHS: five solution streams combined per point. */
LoopNest
loopRhs()
{
    LoopNestBuilder b("applu.rhs");
    b.loop("i", 1, 1 + N_I);
    b.loop("j", 1, 1 + N_J);
    const auto U1 = b.arrayAt("U1", {DIM_I, DIM_J}, BASE);
    const auto U2 = b.arrayAt("U2", {DIM_I, DIM_J}, BASE + STRIDE_8K);
    const auto U3 = b.arrayAt("U3", {DIM_I, DIM_J},
                              BASE + 2 * STRIDE_8K);
    const auto U4 = b.arrayAt("U4", {DIM_I, DIM_J},
                              BASE + 3 * STRIDE_8K + 0x980);
    const auto U5 = b.arrayAt("U5", {DIM_I, DIM_J},
                              BASE + 4 * STRIDE_8K + 0x8C0);
    const auto RSD = b.arrayAt("RSD", {DIM_I, DIM_J},
                               BASE + 5 * STRIDE_8K);

    const auto u1 = b.load(U1, {at(0, 0), at(1, 0)}, "u1");
    const auto u2 = b.load(U2, {at(0, 0), at(1, 0)}, "u2");
    const auto u3 = b.load(U3, {at(0, 0), at(1, 0)}, "u3");
    const auto u4 = b.load(U4, {at(0, 0), at(1, 0)}, "u4");
    const auto u5 = b.load(U5, {at(0, 0), at(1, 0)}, "u5");

    const auto q1 = b.op(Opcode::FMul, {use(u2), use(u2)}, "q1");
    const auto q2 = b.op(Opcode::FMadd, {use(u3), use(u3), use(q1)},
                         "q2");
    const auto q = b.op(Opcode::FDiv, {use(q2), use(u1)}, "q");
    const auto e = b.op(Opcode::FSub, {use(u5), use(q)}, "e");
    const auto rhs = b.op(Opcode::FMadd, {use(e), liveIn(), use(u4)},
                          "rhsv");
    b.store(RSD, {at(0, 0), at(1, 0)}, use(rhs), "srsd");
    return b.build();
}

/**
 * BLTS lower-triangular sweep: v(i,j) uses v(i,j-1) through memory
 * (store -> load, distance 1): a memory-carried recurrence the DDG
 * builder must find and the scheduler must respect.
 */
LoopNest
loopBlts()
{
    LoopNestBuilder b("applu.blts");
    b.loop("i", 1, 1 + N_I);
    b.loop("j", 1, 1 + N_J);
    const auto V = b.arrayAt("V", {DIM_I, DIM_J}, BASE + 6 * STRIDE_8K);
    const auto LD = b.arrayAt("LD", {DIM_I, DIM_J},
                              BASE + 7 * STRIDE_8K + 0x1D40);
    const auto RSD = b.arrayAt("RSD", {DIM_I, DIM_J},
                               BASE + 5 * STRIDE_8K);

    const auto vw = b.load(V, {at(0, 0), at(1, -1)}, "vw");
    const auto ld = b.load(LD, {at(0, 0), at(1, 0)}, "ld");
    const auto r = b.load(RSD, {at(0, 0), at(1, 0)}, "r");
    const auto prod = b.op(Opcode::FMul, {use(ld), use(vw)}, "prod");
    const auto v = b.op(Opcode::FSub, {use(r), use(prod)}, "v");
    b.store(V, {at(0, 0), at(1, 0)}, use(v), "sv");
    return b.build();
}

/** Jacobian blocks: dense reuse of the same point across outputs. */
LoopNest
loopJac()
{
    LoopNestBuilder b("applu.jac");
    b.loop("i", 1, 1 + N_I);
    b.loop("j", 1, 1 + N_J);
    const auto U1 = b.arrayAt("U1", {DIM_I, DIM_J}, BASE);
    const auto U2 = b.arrayAt("U2", {DIM_I, DIM_J}, BASE + STRIDE_8K);
    const auto A = b.arrayAt("A", {DIM_I, DIM_J}, BASE + 9 * STRIDE_8K + 0x980);
    const auto B = b.arrayAt("B", {DIM_I, DIM_J}, BASE + 10 * STRIDE_8K + 0xE40);
    const auto C = b.arrayAt("C", {DIM_I, DIM_J}, BASE + 11 * STRIDE_8K + 0x1300);

    const auto u1 = b.load(U1, {at(0, 0), at(1, 0)}, "u1");
    const auto u2 = b.load(U2, {at(0, 0), at(1, 0)}, "u2");
    const auto inv = b.op(Opcode::FDiv, {liveIn(), use(u1)}, "inv");
    const auto a = b.op(Opcode::FMul, {use(u2), use(inv)}, "a");
    const auto bb = b.op(Opcode::FMul, {use(a), use(u2)}, "bv");
    const auto cc = b.op(Opcode::FMadd, {use(a), use(a), use(u1)}, "cv");
    b.store(A, {at(0, 0), at(1, 0)}, use(a), "sa");
    b.store(B, {at(0, 0), at(1, 0)}, use(bb), "sb");
    b.store(C, {at(0, 0), at(1, 0)}, use(cc), "sc");
    return b.build();
}

/** L2 norm of the residual (reduction). */
LoopNest
loopNorm()
{
    LoopNestBuilder b("applu.l2norm");
    b.loop("i", 1, 1 + N_I);
    b.loop("j", 1, 1 + N_J);
    const auto RSD = b.arrayAt("RSD", {DIM_I, DIM_J},
                               BASE + 5 * STRIDE_8K);
    const auto V = b.arrayAt("V", {DIM_I, DIM_J}, BASE + 6 * STRIDE_8K);

    const auto r = b.load(RSD, {at(0, 0), at(1, 0)}, "r");
    const auto v = b.load(V, {at(0, 0), at(1, 0)}, "v");
    const auto d = b.op(Opcode::FSub, {use(r), use(v)}, "d");
    b.op(Opcode::FMadd, {use(d), use(d), use(b.nextOpId(), 1)}, "acc");
    return b.build();
}

} // namespace

Benchmark
makeApplu()
{
    Benchmark bench;
    bench.name = "applu";
    bench.loops.push_back(loopRhs());
    bench.loops.push_back(loopBlts());
    bench.loops.push_back(loopJac());
    bench.loops.push_back(loopNorm());
    return bench;
}

} // namespace mvp::workloads
