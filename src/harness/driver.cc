#include "harness/driver.hh"

#include <cstdlib>
#include <string>

#include "common/logging.hh"

namespace mvp::harness
{

int
defaultJobs()
{
    if (const char *env = std::getenv("MVP_JOBS")) {
        const int n = std::atoi(env);
        if (n >= 1)
            return n;
        mvp_warn("ignoring MVP_JOBS='", env, "' (want an integer >= 1)");
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw >= 1 ? static_cast<int>(hw) : 1;
}

ParallelDriver::ParallelDriver(int jobs)
    : jobs_(jobs >= 1 ? jobs : defaultJobs())
{
}

ParallelDriver::~ParallelDriver()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        shutdown_ = true;
    }
    wake_.notify_all();
    for (auto &t : pool_)
        t.join();
}

void
ParallelDriver::ensurePool()
{
    if (!pool_.empty())
        return;
    pool_.reserve(static_cast<std::size_t>(jobs_));
    for (int w = 0; w < jobs_; ++w)
        pool_.emplace_back([this] { workerMain(); });
}

void
ParallelDriver::workerMain()
{
    // One context per worker for the driver's whole lifetime: scratch
    // buffers grown by one sweep stay warm for every later sweep.
    sched::SchedContext ctx;
    std::uint64_t seen = 0;
    for (;;) {
        const std::function<void(std::size_t, sched::SchedContext &)>
            *work = nullptr;
        std::size_t items = 0;
        {
            std::unique_lock<std::mutex> lock(mu_);
            wake_.wait(lock, [&] {
                return shutdown_ || generation_ != seen;
            });
            if (shutdown_)
                return;
            seen = generation_;
            work = work_;
            items = items_;
        }

        // Dynamic self-scheduling: each idle worker claims (steals) the
        // next unclaimed item, so the pool load-balances itself around
        // expensive items — exact-backend loops cost up to ~10^3x a
        // heuristic one, which static round-robin sharding would
        // serialise behind the unluckiest worker.
        for (;;) {
            const std::size_t i =
                next_.fetch_add(1, std::memory_order_relaxed);
            if (i >= items)
                break;
            (*work)(i, ctx);
        }

        {
            std::lock_guard<std::mutex> lock(mu_);
            --active_;
        }
        done_.notify_one();
    }
}

void
ParallelDriver::run(
    std::size_t n,
    const std::function<void(std::size_t, sched::SchedContext &)> &work)
{
    if (n == 0)
        return;

    if (jobs_ <= 1 || n == 1) {
        // Serial fast path: same code path as a one-worker pool, minus
        // the thread. The determinism tests compare this against the
        // sharded runs.
        for (std::size_t i = 0; i < n; ++i)
            work(i, serialCtx_);
        return;
    }

    ensurePool();
    {
        std::lock_guard<std::mutex> lock(mu_);
        work_ = &work;
        items_ = n;
        next_.store(0, std::memory_order_relaxed);
        active_ = pool_.size();
        ++generation_;
    }
    wake_.notify_all();

    std::unique_lock<std::mutex> lock(mu_);
    done_.wait(lock, [&] { return active_ == 0; });
    work_ = nullptr;
}

} // namespace mvp::harness
