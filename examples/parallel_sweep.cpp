/**
 * @file
 * The sharded experiment driver in five steps: prepare the workbench
 * once, describe a configuration grid, sweep it across a worker pool,
 * and read the merged per-configuration results — which are
 * byte-identical no matter how many workers ran (demonstrated at the
 * end by re-running the sweep serially and comparing serialisations).
 *
 * Usage: parallel_sweep [--jobs N] [--workloads A,B,...]
 *        (default: all cores, three of the builtin conflict suites;
 *        --workloads accepts builtin names, file:<path> loop files and
 *        gen:<spec> generated suites)
 */

#include <cstdio>
#include <vector>

#include "common/strutil.hh"
#include "common/table.hh"
#include "harness/experiment.hh"
#include "harness/flags.hh"
#include "machine/presets.hh"

using namespace mvp;
using harness::RunConfig;

int
main(int argc, char **argv)
{
    harness::parseObservabilityFlags(argc, argv);
    // --- 1. A driver: --jobs workers, default one per core; the
    // locality provider is selectable the same way (--locality cme |
    // oracle | hybrid). ---
    harness::ParallelDriver driver(harness::parseJobsFlag(argc, argv));
    const std::string locality = harness::parseLocalityFlag(argc, argv);
    const std::int64_t time_budget =
        harness::parseTimeBudgetFlag(argc, argv);
    std::printf("driver: %d worker(s), locality provider '%s'\n",
                driver.jobs(), locality.empty() ? "cme" : locality.c_str());

    // --- 2. The workbench: every workload loop prepared once (DDG +
    // thread-safe CME analysis); all configurations share it. Any
    // workload form resolves here, e.g.
    // --workloads tomcatv,file:my.loops,gen:seed=7+loops=4. ---
    std::vector<std::string> only = harness::parseWorkloadsFlag(argc, argv);
    harness::rejectUnknownFlags(argc, argv,
                                {"--jobs", "--locality",
                                 "--time-budget-ms", "--workloads",
                                 "--log-level", "--metrics",
                                 "--trace"});
    if (only.empty())
        only = {"tomcatv", "swim", "hydro2d"};
    harness::Workbench bench(only);
    std::printf("workbench: %zu loops from %zu suites\n\n",
                bench.entries().size(), bench.benchmarks().size());

    // --- 3. The grid: backend x threshold on the 4-cluster machine. ---
    std::vector<RunConfig> configs;
    for (const char *backend : {"baseline", "rmca"}) {
        for (double thr : {1.0, 0.25}) {
            RunConfig cfg;
            cfg.machine = withLimitedBuses(makeFourCluster(), 1, 4);
            cfg.backend = backend;
            cfg.locality = locality;
            cfg.threshold = thr;
            cfg.timeBudgetMs = time_budget;
            configs.push_back(cfg);
        }
    }

    // --- 4. One sweep: (loop, config) items sharded over the pool. ---
    sim::SimParams params;
    params.maxExecutions = 4;
    const auto results =
        harness::runSuiteSweep(bench, configs, params, driver);

    TextTable table({"backend", "thr", "compute", "stall", "total"});
    table.setTitle("4-cluster (NMB=1, LMB=4), three conflict suites");
    for (std::size_t i = 0; i < configs.size(); ++i)
        table.addRow({configs[i].backend,
                      fmtDouble(configs[i].threshold, 2),
                      std::to_string(results[i].compute),
                      std::to_string(results[i].stall),
                      std::to_string(results[i].total())});
    std::printf("%s\n", table.render().c_str());

    // --- 5. Determinism: a serial re-run serialises identically. ---
    harness::ParallelDriver serial(1);
    const auto again =
        harness::runSuiteSweep(bench, configs, params, serial);
    bool identical = true;
    for (std::size_t i = 0; i < configs.size(); ++i)
        identical = identical && harness::formatSuiteResult(results[i]) ==
                                     harness::formatSuiteResult(again[i]);
    std::printf("jobs=%d vs jobs=1: results %s\n", driver.jobs(),
                identical ? "byte-identical" : "DIVERGED (bug!)");
    return identical ? 0 : 1;
}
