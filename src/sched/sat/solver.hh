/**
 * @file
 * Embedded CDCL SAT solver for the `sat` scheduling backend.
 *
 * A deliberately small, dependency-free conflict-driven clause-learning
 * engine in the MiniSat lineage: two-literal watching for unit
 * propagation, first-UIP conflict analysis with non-chronological
 * backjumping, VSIDS-style activity decay, Luby restarts, and
 * assumption-based incremental solving so successive II probes on the
 * same loop reuse the learned-clause database (each probe's encoding is
 * guarded by an activation literal; see encode.hh).
 *
 * Determinism contract: the solver contains no randomness and no
 * interleaving-dependent state. Decisions pick the unassigned variable
 * of maximum activity with ties broken toward the smaller variable
 * index, phases are saved (initially false — the scheduling encoding
 * is sparse, so "false" is almost always the satisfying polarity), and
 * clause/watch orders depend only on the call sequence. Two solves of
 * the same formula therefore take the same path and return the same
 * model on every machine and at any `--jobs`, *unless* a wall-clock
 * budget or portfolio cancellation fires first — exactly the caveat
 * the exact B&B documents for its own wall-clock budget.
 *
 * Budgets are polled on the propagation path: every PROPAGATION_SLICE
 * enqueued implications the solver checks the deadline, the optional
 * shared-incumbent cancellation atomic, and the conflict cap, so a
 * stuck probe notices its budget within microseconds without paying a
 * clock read per propagation.
 */

#ifndef MVP_SCHED_SAT_SOLVER_HH
#define MVP_SCHED_SAT_SOLVER_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace mvp::sched::sat
{

/** Variable index (0-based). */
using Var = std::int32_t;

/** Literal: variable with sign, encoded as 2*var + (negated ? 1 : 0). */
struct Lit
{
    std::int32_t x = -2;

    bool operator==(const Lit &o) const { return x == o.x; }
    bool operator!=(const Lit &o) const { return x != o.x; }
};

constexpr Lit LIT_UNDEF{-2};

inline Lit
mkLit(Var v, bool neg = false)
{
    return Lit{2 * v + (neg ? 1 : 0)};
}

inline Lit
operator~(Lit l)
{
    return Lit{l.x ^ 1};
}

inline Var
var(Lit l)
{
    return l.x >> 1;
}

inline bool
sign(Lit l)
{
    return (l.x & 1) != 0;
}

/** Tri-state assignment value. */
enum class LBool : std::uint8_t { False = 0, True = 1, Undef = 2 };

/** Outcome of a solve() call. */
enum class SolveResult
{
    Sat,     ///< model found (read it with modelValue())
    Unsat,   ///< refuted under the given assumptions
    Unknown, ///< a budget (deadline/cancel/conflict cap) fired first
};

/** Cumulative work counters (monotone across solve() calls). */
struct SolverStats
{
    std::int64_t conflicts = 0;    ///< conflicts analysed
    std::int64_t propagations = 0; ///< literals enqueued by propagation
    std::int64_t decisions = 0;    ///< branching decisions
    std::int64_t learned = 0;      ///< clauses learned (kept forever)
    std::int64_t learnedLits = 0;  ///< total literals across learned
    std::int64_t restarts = 0;     ///< Luby restarts taken
};

/**
 * The solver. Usage: newVar()/addClause() to build, solve() to run,
 * modelValue() to read a model, addClause() again between solves for
 * incremental refinement (blocking clauses, next II probe's encoding).
 */
class Solver
{
  public:
    Solver();

    /** @name Problem construction */
    /// @{
    /** Allocate and return a fresh variable. */
    Var newVar();

    int nVars() const { return static_cast<int>(assigns_.size()); }

    /**
     * Add a clause (may be called between solve()s; the trail is
     * rewound to the root level first). Returns false when the clause
     * makes the formula unsatisfiable at the root — the solver is then
     * permanently UNSAT (okay() == false).
     */
    bool addClause(const std::vector<Lit> &lits);

    /** False once root-level UNSAT has been derived. */
    bool okay() const { return ok_; }
    /// @}

    /** @name Budgets (checked every PROPAGATION_SLICE propagations) */
    /// @{
    /** Wall-clock deadline; disabled by default. */
    void setDeadline(std::chrono::steady_clock::time_point deadline)
    {
        deadline_ = deadline;
        deadline_on_ = true;
    }

    void clearDeadline() { deadline_on_ = false; }

    /**
     * Shared-incumbent cancellation (portfolio racing): abort the
     * solve once *best <= ii — a refutation at or above a
     * known-feasible II proves nothing more. Pass nullptr to clear.
     */
    void setCancel(const std::atomic<Cycle> *best, Cycle ii)
    {
        cancel_ = best;
        cancel_ii_ = ii;
    }

    /**
     * Deterministic conflict cap for this and subsequent solve()s;
     * 0 = uncapped. Counted per solve() call, so each II probe gets
     * the full allowance (mirrors the B&B's per-attempt node budget).
     */
    void setConflictBudget(std::int64_t max_conflicts)
    {
        conflict_budget_ = max_conflicts;
    }
    /// @}

    /**
     * Solve under @p assumptions (decided first, in order, before any
     * activity-driven branching). Unknown means a budget fired; the
     * formula and learned clauses remain valid for another try.
     */
    SolveResult solve(const std::vector<Lit> &assumptions);

    SolveResult solve() { return solve({}); }

    /** Model polarity of @p v after solve() returned Sat. */
    bool modelValue(Var v) const
    {
        return model_[static_cast<std::size_t>(v)] == LBool::True;
    }

    /**
     * After solve() returned Unsat under assumptions: the subset of
     * the assumptions implicated in the refutation (an unsat core over
     * the assumption set; empty when the formula is UNSAT outright).
     */
    const std::vector<Lit> &conflictCore() const { return conflict_core_; }

    const SolverStats &stats() const { return stats_; }

    /** True when the last solve() aborted on a budget (telemetry). */
    bool budgetHit() const { return budget_hit_; }

  private:
    using CRef = std::uint32_t;
    static constexpr CRef CREF_UNDEF = 0xffffffffu;
    static constexpr int PROPAGATION_SLICE = 2048;

    struct Watch
    {
        CRef cref;
        Lit blocker; ///< satisfied => skip the clause without touching it
    };

    struct VarOrderLt
    {
        const std::vector<double> &act;
        bool operator()(Var a, Var b) const
        {
            const double aa = act[static_cast<std::size_t>(a)];
            const double ab = act[static_cast<std::size_t>(b)];
            if (aa != ab)
                return aa > ab;
            return a < b; ///< deterministic tie-break: smaller index wins
        }
    };

    // Clause arena accessors: a clause is [header][lit 0..size-1] in
    // arena_, header = size << 1 | learnt.
    std::int32_t clauseSize(CRef c) const { return arena_[c] >> 1; }
    Lit *clauseLits(CRef c) { return reinterpret_cast<Lit *>(&arena_[c + 1]); }
    const Lit *clauseLits(CRef c) const
    {
        return reinterpret_cast<const Lit *>(&arena_[c + 1]);
    }

    LBool value(Lit l) const
    {
        const LBool v = assigns_[static_cast<std::size_t>(var(l))];
        if (v == LBool::Undef)
            return LBool::Undef;
        return (v == LBool::True) != sign(l) ? LBool::True : LBool::False;
    }

    int level(Var v) const { return level_[static_cast<std::size_t>(v)]; }

    CRef allocClause(const std::vector<Lit> &lits, bool learnt);
    void attachClause(CRef c);
    void uncheckedEnqueue(Lit l, CRef reason);
    CRef propagate();
    void analyze(CRef conflict, std::vector<Lit> &out_learnt,
                 int &out_btlevel);
    void analyzeFinal(Lit p, std::vector<Lit> &out_core);
    void cancelUntil(int lvl);
    Lit pickBranchLit();
    void varBumpActivity(Var v);
    void varDecayActivity() { var_inc_ /= VAR_DECAY; }
    void insertVarOrder(Var v);
    void heapDecreaseKey(int pos);
    Var heapRemoveMin();
    bool heapEmpty() const { return heap_.empty(); }
    bool budgetExceeded(std::int64_t conflicts_at_entry);

    static constexpr double VAR_DECAY = 0.95;
    static constexpr double ACT_RESCALE = 1e100;

    bool ok_ = true;
    std::vector<std::int32_t> arena_;
    std::vector<std::vector<Watch>> watches_; ///< indexed by Lit.x
    std::vector<LBool> assigns_;              ///< by var
    std::vector<LBool> model_;                ///< by var (last Sat solve)
    std::vector<char> polarity_;              ///< saved phase, by var
    std::vector<int> level_;                  ///< by var
    std::vector<CRef> reason_;                ///< by var
    std::vector<double> activity_;            ///< by var
    std::vector<Lit> trail_;
    std::vector<int> trail_lim_;
    std::size_t qhead_ = 0;
    double var_inc_ = 1.0;

    // Binary heap over vars keyed by (activity desc, index asc).
    std::vector<Var> heap_;
    std::vector<int> heap_pos_; ///< by var; -1 = not in heap

    std::vector<char> seen_; ///< by var, scratch for analyze()
    std::vector<Var> analyze_clear_; ///< vars marked in seen_ this call
    std::vector<Lit> conflict_core_;

    bool deadline_on_ = false;
    std::chrono::steady_clock::time_point deadline_{};
    const std::atomic<Cycle> *cancel_ = nullptr;
    Cycle cancel_ii_ = 0;
    std::int64_t conflict_budget_ = 0;
    std::int64_t slice_mark_ = 0; ///< propagation count at last poll
    bool budget_hit_ = false;

    SolverStats stats_;
};

} // namespace mvp::sched::sat

#endif // MVP_SCHED_SAT_SOLVER_HH
