/**
 * @file
 * Process-wide metrics registry: the "why" layer of the stack.
 *
 * Every subsystem that does interesting work — the RMCA placement
 * loop, the exact branch-and-bound, the portfolio backend, the
 * parallel driver's worker pool, the CME/locality caches — records
 * named counters, gauges, histograms (common/stats.hh) into a
 * MetricShard. Shards are per-SchedContext: workers aggregate locally
 * with plain integer arithmetic (no atomics, no locks on the hot
 * path) and fold into the one process-wide Registry at sweep
 * boundaries, where a mutex is cheap.
 *
 * The determinism contract — the part that makes the numbers
 * trustworthy under the `--jobs` pool — splits every report in two:
 *
 *  - the *deterministic* section holds content-derived integer
 *    counters, max-gauges and histograms: search nodes, prune-reason
 *    counts, memo probes/hits, backjump depths, II attempts, pool
 *    item totals. Each work item's contribution is a pure function of
 *    the item (the same property the schedule fingerprints rely on),
 *    and integer merging is commutative, so the folded totals are
 *    byte-identical at any job count — enforced by tests/obs_test.cc
 *    at jobs=1/2/8. The caveat is inherited from the outputs
 *    themselves: a search that degrades on its *wall-clock* budget
 *    contributes timing-dependent counts, exactly as it reports a
 *    timing-dependent "gap unknown" row.
 *
 *  - the *runtime* section holds everything interleaving- or
 *    clock-shaped: wall-time timers (RunningStat; its Chan merge is
 *    float-order-dependent), pool busy time, queue-claim latency,
 *    portfolio shard/CAS traffic, and shared-cache totals (two
 *    workers racing on one memo key legitimately both count). Useful,
 *    but never byte-compared.
 *
 * Cost model: recording is gated on metricsOn(), a single relaxed
 * atomic load, so the disabled path is one predictable branch. Hot
 * loops keep plain local variables and fold once per schedule call.
 */

#ifndef MVP_OBS_METRICS_HH
#define MVP_OBS_METRICS_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "common/stats.hh"

namespace mvp::obs
{

namespace detail
{
extern std::atomic<bool> g_metrics_on;
} // namespace detail

/** Whether metric recording is enabled (one relaxed atomic load). */
inline bool
metricsOn()
{
    return detail::g_metrics_on.load(std::memory_order_relaxed);
}

/**
 * One thread's (one SchedContext's) metric accumulator. Not
 * thread-safe — exactly like the SchedContext that owns it; the
 * Registry's fold() is the only cross-thread hand-off.
 */
class MetricShard
{
  public:
    /** @name Deterministic section (content-derived, byte-compared) */
    /// @{
    /** Mutable deterministic counter (created at 0). */
    std::int64_t &det(const std::string &name)
    {
        return det_.counters.counter(name);
    }

    /** Deterministic max-gauge (high-water mark). */
    void detMax(const std::string &name, std::int64_t v)
    {
        det_.counters_max.setMax(name, v);
    }

    /** Deterministic histogram, created with the given binning on
     * first use (later calls must repeat the same binning). */
    Histogram &detHist(const std::string &name, double lo, double hi,
                       std::size_t buckets);
    /// @}

    /** @name Runtime section (timing/interleaving-shaped) */
    /// @{
    std::int64_t &rt(const std::string &name)
    {
        return rt_.counters.counter(name);
    }

    void rtMax(const std::string &name, std::int64_t v)
    {
        rt_.counters_max.setMax(name, v);
    }

    Histogram &rtHist(const std::string &name, double lo, double hi,
                      std::size_t buckets);

    /** Wall-time accumulator (milliseconds by convention). */
    RunningStat &timer(const std::string &name)
    {
        return timers_[name];
    }
    /// @}

    /** Counter routed by section (probe searches record runtime). */
    std::int64_t &counter(bool deterministic, const std::string &name)
    {
        return deterministic ? det(name) : rt(name);
    }

    /** Fold @p other into this shard (commutative per section rules:
     * counters add, gauges max, histograms add, timers Chan-merge). */
    void merge(const MetricShard &other);

    /** Drop every value (capacity may be kept by the maps). */
    void clear();

    /** True when nothing has been recorded. */
    bool empty() const;

    /** One half of the report (named publicly so the renderers in
     * metrics.cc can take it by reference; the instances stay
     * private). */
    struct Section
    {
        StatGroup counters;
        StatGroup counters_max;   ///< max-merged gauges
        std::map<std::string, Histogram> hists;
    };

  private:
    friend class Registry;

    Section det_;
    Section rt_;
    std::map<std::string, RunningStat> timers_;   ///< runtime only
};

/**
 * The process-wide sink every shard folds into. enable()/disable()
 * flip the metricsOn() gate; reset() clears accumulated data for
 * A/B comparisons (tests, repeated sweeps).
 */
class Registry
{
  public:
    static Registry &instance();

    void enable() { detail::g_metrics_on.store(true); }
    void disable() { detail::g_metrics_on.store(false); }

    /** Clear all folded data (the enable gate is left alone). */
    void reset();

    /** Merge @p shard into the totals and clear it. Thread-safe. */
    void fold(MetricShard &shard);

    /**
     * Stable-sorted plain-text report, deterministic section first.
     * Lines are "counter NAME = V", "gauge NAME = V",
     * "hist NAME <Histogram::dump()>", "timer NAME ...".
     */
    std::string textReport() const;

    /** The deterministic section only — the byte-compared half. */
    std::string deterministicReport() const;

    /** The same report as stable-ordered JSON (one object with
     * "deterministic" and "runtime" members). */
    std::string jsonReport() const;

  private:
    Registry() = default;

    mutable std::mutex mu_;
    MetricShard total_;
};

/** @name One-shot folds
 * For code that records a metric outside any SchedContext — the
 * service's session/reactor layers, snapshot SAVE/LOAD — where
 * building and folding a whole MetricShard per event is noise. All
 * are no-ops (one relaxed load) when the registry is disabled, and
 * take the registry mutex once when it is on; hot loops that fire
 * many times per item should still batch into a MetricShard.
 */
/// @{

/** Add @p delta to the runtime counter @p name. */
void foldRtCounter(const std::string &name, std::int64_t delta);

/** Max-merge @p v into the runtime gauge @p name. */
void foldRtMax(const std::string &name, std::int64_t v);

/** Record @p sample into the runtime histogram @p name (created with
 * the given binning on first use; later binnings must match). */
void foldRtHist(const std::string &name, double lo, double hi,
                std::size_t buckets, double sample);

/// @}

/**
 * Flag-level session: remember where `--metrics[=<file>]` wants the
 * report and enable the registry. Empty @p path = text report on
 * stdout at metricsFinish(); otherwise JSON into the file.
 */
void metricsInit(const std::string &path);

/** Emit the report chosen by metricsInit(). Idempotent; a no-op when
 * metricsInit() never ran. Call after all sweeps completed. */
void metricsFinish();

} // namespace mvp::obs

#endif // MVP_OBS_METRICS_HH
