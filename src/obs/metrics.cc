#include "obs/metrics.hh"

#include <cstdio>
#include <utility>

#include "common/logging.hh"

namespace mvp::obs
{

namespace detail
{
std::atomic<bool> g_metrics_on{false};
} // namespace detail

namespace
{

/** See fmtStatDouble in common/stats.cc: snprintf + comma fix. */
std::string
fmtMetricDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    for (char *p = buf; *p != '\0'; ++p)
        if (*p == ',')
            *p = '.';
    return buf;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Append `"name": value` pairs for a whole map, comma-separated. */
template <typename Map, typename Fmt>
void
appendJsonMap(std::string &out, const Map &map, Fmt &&fmt)
{
    bool first = true;
    for (const auto &[name, value] : map) {
        if (!first)
            out += ',';
        first = false;
        out += '"';
        out += jsonEscape(name);
        out += "\":";
        out += fmt(value);
    }
}

struct SessionState
{
    bool active = false;
    bool to_file = false;
    std::string path;
};

SessionState &
session()
{
    static SessionState s;
    return s;
}

} // namespace

Histogram &
MetricShard::detHist(const std::string &name, double lo, double hi,
                     std::size_t buckets)
{
    return det_.hists.try_emplace(name, lo, hi, buckets).first->second;
}

Histogram &
MetricShard::rtHist(const std::string &name, double lo, double hi,
                    std::size_t buckets)
{
    return rt_.hists.try_emplace(name, lo, hi, buckets).first->second;
}

void
MetricShard::merge(const MetricShard &other)
{
    det_.counters.merge(other.det_.counters);
    for (const auto &[name, value] : other.det_.counters_max.all())
        det_.counters_max.setMax(name, value);
    for (const auto &[name, hist] : other.det_.hists) {
        auto it = det_.hists.find(name);
        if (it == det_.hists.end())
            det_.hists.emplace(name, hist);
        else
            it->second.merge(hist);
    }
    rt_.counters.merge(other.rt_.counters);
    for (const auto &[name, value] : other.rt_.counters_max.all())
        rt_.counters_max.setMax(name, value);
    for (const auto &[name, hist] : other.rt_.hists) {
        auto it = rt_.hists.find(name);
        if (it == rt_.hists.end())
            rt_.hists.emplace(name, hist);
        else
            it->second.merge(hist);
    }
    for (const auto &[name, stat] : other.timers_)
        timers_[name].merge(stat);
}

void
MetricShard::clear()
{
    det_ = Section{};
    rt_ = Section{};
    timers_.clear();
}

bool
MetricShard::empty() const
{
    return det_.counters.all().empty() && det_.counters_max.all().empty() &&
           det_.hists.empty() && rt_.counters.all().empty() &&
           rt_.counters_max.all().empty() && rt_.hists.empty() &&
           timers_.empty();
}

Registry &
Registry::instance()
{
    static Registry r;
    return r;
}

void
Registry::reset()
{
    std::lock_guard<std::mutex> lock(mu_);
    total_.clear();
}

void
foldRtCounter(const std::string &name, std::int64_t delta)
{
    if (!metricsOn())
        return;
    MetricShard shard;
    shard.rt(name) += delta;
    Registry::instance().fold(shard);
}

void
foldRtMax(const std::string &name, std::int64_t v)
{
    if (!metricsOn())
        return;
    MetricShard shard;
    shard.rtMax(name, v);
    Registry::instance().fold(shard);
}

void
foldRtHist(const std::string &name, double lo, double hi,
           std::size_t buckets, double sample)
{
    if (!metricsOn())
        return;
    MetricShard shard;
    shard.rtHist(name, lo, hi, buckets).add(sample);
    Registry::instance().fold(shard);
}

void
Registry::fold(MetricShard &shard)
{
    if (shard.empty())
        return;
    {
        std::lock_guard<std::mutex> lock(mu_);
        total_.merge(shard);
    }
    shard.clear();
}

namespace
{

std::string
sectionText(const MetricShard::Section &sec)
{
    std::string out;
    for (const auto &[name, value] : sec.counters.all())
        out += "counter " + name + " = " + std::to_string(value) + '\n';
    for (const auto &[name, value] : sec.counters_max.all())
        out += "gauge " + name + " = " + std::to_string(value) + '\n';
    for (const auto &[name, hist] : sec.hists)
        out += "hist " + name + " " + hist.dump() + '\n';
    return out;
}

std::string
timerText(const std::map<std::string, RunningStat> &timers)
{
    std::string out;
    for (const auto &[name, stat] : timers) {
        out += "timer " + name + " count=" +
               std::to_string(stat.count()) +
               " sum=" + fmtMetricDouble(stat.sum()) +
               " mean=" + fmtMetricDouble(stat.mean()) +
               " max=" + fmtMetricDouble(stat.max()) + '\n';
    }
    return out;
}

std::string
sectionJson(const MetricShard::Section &sec)
{
    std::string out = "{\"counters\":{";
    appendJsonMap(out, sec.counters.all(),
                  [](std::int64_t v) { return std::to_string(v); });
    out += "},\"gauges\":{";
    appendJsonMap(out, sec.counters_max.all(),
                  [](std::int64_t v) { return std::to_string(v); });
    out += "},\"histograms\":{";
    appendJsonMap(out, sec.hists, [](const Histogram &h) {
        std::string j = "{\"count\":" + std::to_string(h.count());
        j += ",\"mean\":" + fmtMetricDouble(h.mean());
        j += ",\"p50\":" + fmtMetricDouble(h.percentile(50.0));
        j += ",\"p90\":" + fmtMetricDouble(h.percentile(90.0));
        j += ",\"p99\":" + fmtMetricDouble(h.percentile(99.0));
        j += ",\"underflow\":" + std::to_string(h.underflow());
        j += ",\"overflow\":" + std::to_string(h.overflow());
        j += '}';
        return j;
    });
    out += "}}";
    return out;
}

} // namespace

std::string
Registry::textReport() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::string out = "# deterministic\n";
    out += sectionText(total_.det_);
    out += "# runtime\n";
    out += sectionText(total_.rt_);
    out += timerText(total_.timers_);
    return out;
}

std::string
Registry::deterministicReport() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return sectionText(total_.det_);
}

std::string
Registry::jsonReport() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::string out = "{\"deterministic\":";
    out += sectionJson(total_.det_);
    out += ",\"runtime\":";
    std::string rt = sectionJson(total_.rt_);
    // Splice the timers member into the runtime object (before its
    // closing brace) so the runtime section is one flat object.
    rt.pop_back();
    rt += ",\"timers\":{";
    appendJsonMap(rt, total_.timers_, [](const RunningStat &s) {
        std::string j = "{\"count\":" + std::to_string(s.count());
        j += ",\"sum\":" + fmtMetricDouble(s.sum());
        j += ",\"mean\":" + fmtMetricDouble(s.mean());
        j += ",\"max\":" + fmtMetricDouble(s.max());
        j += '}';
        return j;
    });
    rt += "}}";
    out += rt;
    out += "}\n";
    return out;
}

void
metricsInit(const std::string &path)
{
    auto &s = session();
    s.active = true;
    s.to_file = !path.empty();
    s.path = path;
    Registry::instance().enable();
}

void
metricsFinish()
{
    auto &s = session();
    if (!s.active)
        return;
    s.active = false;
    auto &reg = Registry::instance();
    if (s.to_file) {
        std::FILE *f = std::fopen(s.path.c_str(), "w");
        if (f == nullptr) {
            mvp_warn("cannot write metrics file '", s.path, "'");
            return;
        }
        const std::string json = reg.jsonReport();
        std::fwrite(json.data(), 1, json.size(), f);
        std::fclose(f);
        mvp_inform("metrics written to ", s.path);
    } else {
        const std::string text = reg.textReport();
        std::fwrite(text.data(), 1, text.size(), stdout);
        std::fflush(stdout);
    }
}

} // namespace mvp::obs
