#include "sched/scheduler.hh"

#include <algorithm>
#include <map>
#include <optional>

#include "cme/reuse.hh"
#include "common/logging.hh"
#include "sched/lifetimes.hh"
#include "sched/mii.hh"
#include "sched/mrt.hh"
#include "sched/ordering.hh"

namespace mvp::sched
{

namespace
{

constexpr double EPS = 1e-9;
constexpr Cycle NO_BOUND = CYCLE_MAX / 4;

/** A register communication the placement under evaluation would add. */
struct NewComm
{
    OpId producer;
    ClusterId from;
    ClusterId to;
    Cycle xferStart;
    int bus;
};

/** A candidate placement of one op in one cluster. */
struct Placement
{
    Cycle time = -1;
    Cycle outLatency = 0;
    std::vector<NewComm> newComms;
};

/**
 * State of one II attempt.
 */
class Attempt
{
  public:
    Attempt(const ddg::Ddg &graph, const MachineConfig &machine,
            const SchedulerOptions &options, Cycle ii)
        : graph_(graph), machine_(machine), options_(options), ii_(ii),
          mrt_(machine, ii),
          sched_(ii, graph.size(), machine.nClusters),
          is_placed_(graph.size(), false),
          mem_set_(static_cast<std::size_t>(machine.nClusters))
    {
    }

    /** Place one op; false aborts the attempt (II must grow). */
    bool place(OpId v);

    /**
     * Shift the whole schedule by a multiple of II so that every time
     * is non-negative (placement may have gone below zero; the modulo
     * structure is shift-invariant).
     */
    void normalize();

    /** Final register-pressure check; false aborts the attempt. */
    bool checkRegisters();

    ModuloSchedule takeSchedule() { return std::move(sched_); }

    const std::vector<std::vector<OpId>> &memSets() const
    {
        return mem_set_;
    }

  private:
    std::optional<Placement> trySlot(OpId v, ClusterId c, Cycle out_lat);
    void commit(OpId v, ClusterId c, const Placement &p, bool miss);
    double addedMisses(OpId v, ClusterId c);
    int regAffinity(OpId v, ClusterId c) const;
    bool betterCluster(OpId v, ClusterId cand, ClusterId best,
                       double cand_miss, double best_miss,
                       bool use_miss) const;

    const ddg::Ddg &graph_;
    const MachineConfig &machine_;
    const SchedulerOptions &options_;
    Cycle ii_;
    Mrt mrt_;
    ModuloSchedule sched_;
    std::vector<char> is_placed_;
    std::vector<std::vector<OpId>> mem_set_;   ///< memory ops per cluster
    std::map<std::pair<OpId, ClusterId>, Cycle> comm_start_;
    ddg::LatencyOverrides overrides_;          ///< miss-promoted loads
};

std::optional<Placement>
Attempt::trySlot(OpId v, ClusterId c, Cycle out_lat)
{
    const Cycle lrb = machine_.regBusLatency;

    // --- Collect window bounds from already-placed neighbours. ---
    Cycle early = 0;
    Cycle late = NO_BOUND;
    bool has_pred = false;
    bool has_succ = false;

    // Inbound cross-cluster register values that need a *new* transfer:
    // producer -> tightest arrival budget (t_v + II*min_dist).
    std::map<OpId, int> in_need_min_dist;

    for (int ei : graph_.inEdges(v)) {
        const auto &e = graph_.edges()[static_cast<std::size_t>(ei)];
        if (e.src == v || !is_placed_[static_cast<std::size_t>(e.src)])
            continue;
        const auto &pu = sched_.placed(e.src);
        has_pred = true;
        if (e.isRegFlow() && pu.cluster != c) {
            const auto key = std::make_pair(e.src, c);
            if (auto it = comm_start_.find(key); it != comm_start_.end()) {
                early = std::max(early,
                                 it->second + lrb - ii_ * e.distance);
            } else {
                const Cycle ready = pu.time + pu.outLatency;
                early = std::max(early, ready + lrb - ii_ * e.distance);
                auto [mit, fresh] =
                    in_need_min_dist.emplace(e.src, e.distance);
                if (!fresh)
                    mit->second = std::min(mit->second, e.distance);
            }
        } else {
            const Cycle lat =
                e.isRegFlow() ? pu.outLatency : e.latency;
            early = std::max(early, pu.time + lat - ii_ * e.distance);
        }
    }

    // Outbound cross-cluster transfers to placed consumers: destination
    // cluster -> tightest consumption budget min(t_w + II*dist).
    std::map<ClusterId, Cycle> out_budget;

    for (int ei : graph_.outEdges(v)) {
        const auto &e = graph_.edges()[static_cast<std::size_t>(ei)];
        if (e.dst == v || !is_placed_[static_cast<std::size_t>(e.dst)])
            continue;
        const auto &pw = sched_.placed(e.dst);
        has_succ = true;
        const Cycle budget = pw.time + ii_ * e.distance;
        if (e.isRegFlow() && pw.cluster != c) {
            auto [it, fresh] = out_budget.emplace(pw.cluster, budget);
            if (!fresh)
                it->second = std::min(it->second, budget);
        } else {
            const Cycle lat = e.isRegFlow() ? out_lat : e.latency;
            late = std::min(late, budget - lat);
        }
    }
    for (const auto &[cluster, budget] : out_budget)
        late = std::min(late, budget - lrb - out_lat);

    // With placed neighbours on both sides the window [early, late]
    // must be non-empty; one-sided windows are never empty (the scan
    // direction follows the constrained side, times may go negative).
    if (has_pred && has_succ && late < early)
        return std::nullopt;

    // --- Scan the window (at most II slots; SMS direction rule).
    // Times may go negative while scheduling: modulo schedules are
    // shift-invariant, and the attempt normalises by a multiple of II
    // once every node is placed. ---
    std::vector<Cycle> candidates;
    if (has_succ && !has_pred) {
        const Cycle hi = std::min(late, NO_BOUND);
        const Cycle lo = hi - ii_ + 1;
        for (Cycle t = hi; t >= lo; --t)
            candidates.push_back(t);
    } else {
        const Cycle hi = std::min(late, early + ii_ - 1);
        for (Cycle t = early; t <= hi; ++t)
            candidates.push_back(t);
    }

    const ir::FuType fu = graph_.loop().op(v).fuType();
    for (Cycle t : candidates) {
        if (!mrt_.fuFree(t, c, fu))
            continue;

        // Reserve buses tentatively; roll back on any failure.
        std::vector<NewComm> reserved;
        auto rollback = [&]() {
            for (const auto &nc : reserved)
                mrt_.releaseBus(nc.bus, nc.xferStart);
            reserved.clear();
        };
        bool ok = true;

        // Inbound transfers (value of u must reach cluster c).
        for (const auto &[u, min_dist] : in_need_min_dist) {
            const auto &pu = sched_.placed(u);
            const Cycle x_min = pu.time + pu.outLatency;
            const Cycle x_max = t + ii_ * min_dist - lrb;
            bool found = false;
            const Cycle hi = std::min(x_max, x_min + ii_ - 1);
            for (Cycle x = x_min; x <= hi; ++x) {
                const int bus = mrt_.findFreeBus(x);
                if (bus != -2) {
                    mrt_.reserveBus(bus, x);
                    reserved.push_back({u, pu.cluster, c, x, bus});
                    found = true;
                    break;
                }
            }
            if (!found) {
                ok = false;
                break;
            }
        }

        // Outbound transfers (v's value must reach consumer clusters).
        if (ok) {
            for (const auto &[dest, budget] : out_budget) {
                const Cycle x_min = t + out_lat;
                const Cycle x_max = budget - lrb;
                bool found = false;
                const Cycle hi = std::min(x_max, x_min + ii_ - 1);
                for (Cycle x = x_min; x <= hi; ++x) {
                    const int bus = mrt_.findFreeBus(x);
                    if (bus != -2) {
                        mrt_.reserveBus(bus, x);
                        reserved.push_back({v, c, dest, x, bus});
                        found = true;
                        break;
                    }
                }
                if (!found) {
                    ok = false;
                    break;
                }
            }
        }

        if (!ok) {
            rollback();
            continue;
        }

        // Feasible: hand the reservations back (the caller re-applies
        // them on commit; evaluation of other clusters must not hold
        // them).
        Placement p;
        p.time = t;
        p.outLatency = out_lat;
        p.newComms = reserved;
        rollback();
        return p;
    }
    return std::nullopt;
}

void
Attempt::commit(OpId v, ClusterId c, const Placement &p, bool miss)
{
    auto &slot = sched_.placed(v);
    slot.cluster = c;
    slot.time = p.time;
    slot.outLatency = p.outLatency;
    slot.missScheduled = miss;
    is_placed_[static_cast<std::size_t>(v)] = true;
    mrt_.placeFu(p.time, c, graph_.loop().op(v).fuType());
    for (const auto &nc : p.newComms) {
        mrt_.reserveBus(nc.bus, nc.xferStart);
        sched_.comms().push_back(
            {nc.producer, nc.from, nc.to, nc.xferStart, nc.bus});
        comm_start_[{nc.producer, nc.to}] = nc.xferStart;
    }
    if (graph_.loop().op(v).isMemory())
        mem_set_[static_cast<std::size_t>(c)].push_back(v);
    if (miss)
        overrides_[v] = p.outLatency;
}

double
Attempt::addedMisses(OpId v, ClusterId c)
{
    auto *loc = options_.locality;
    const CacheGeom geom = machine_.clusterCacheGeom();
    const auto &set = mem_set_[static_cast<std::size_t>(c)];
    std::vector<OpId> with = set;
    with.push_back(v);
    return loc->missesPerIteration(with, geom) -
           loc->missesPerIteration(set, geom);
}

int
Attempt::regAffinity(OpId v, ClusterId c) const
{
    // Output-edge profit of [22]: register edges between v and the ops
    // already placed in c count double; additionally, a *sibling* bond
    // counts once — a placed node in c adjacent to an unscheduled
    // neighbour of v (e.g. the other operand of v's future consumer).
    // Joining that cluster lets the shared neighbour be placed without
    // any edge leaving the cluster's subgraph, which is exactly the
    // exit-edge quantity the heuristic minimises.
    int affinity = 0;
    auto neighbour_cluster_bonus = [&](OpId other) {
        if (other == v)
            return;
        if (is_placed_[static_cast<std::size_t>(other)]) {
            if (sched_.placed(other).cluster == c)
                affinity += 2;
            return;
        }
        // Unscheduled neighbour: look one level further.
        auto sibling = [&](OpId w) {
            if (w != v && w != other &&
                is_placed_[static_cast<std::size_t>(w)] &&
                sched_.placed(w).cluster == c)
                ++affinity;
        };
        for (int ei : graph_.inEdges(other)) {
            const auto &e = graph_.edges()[static_cast<std::size_t>(ei)];
            if (e.isRegFlow())
                sibling(e.src);
        }
        for (int ei : graph_.outEdges(other)) {
            const auto &e = graph_.edges()[static_cast<std::size_t>(ei)];
            if (e.isRegFlow())
                sibling(e.dst);
        }
    };
    for (int ei : graph_.inEdges(v)) {
        const auto &e = graph_.edges()[static_cast<std::size_t>(ei)];
        if (e.isRegFlow())
            neighbour_cluster_bonus(e.src);
    }
    for (int ei : graph_.outEdges(v)) {
        const auto &e = graph_.edges()[static_cast<std::size_t>(ei)];
        if (e.isRegFlow())
            neighbour_cluster_bonus(e.dst);
    }
    return affinity;
}

bool
Attempt::betterCluster(OpId v, ClusterId cand, ClusterId best,
                       double cand_miss, double best_miss,
                       bool use_miss) const
{
    if (use_miss) {
        if (cand_miss < best_miss - EPS)
            return true;
        if (cand_miss > best_miss + EPS)
            return false;
    }
    const int a_cand = regAffinity(v, cand);
    const int a_best = regAffinity(v, best);
    if (a_cand != a_best)
        return a_cand > a_best;
    // Workload balance: fewer ops of this FU class already placed.
    const ir::FuType fu = graph_.loop().op(v).fuType();
    const int l_cand = mrt_.fuLoad(cand, fu);
    const int l_best = mrt_.fuLoad(best, fu);
    if (l_cand != l_best)
        return l_cand < l_best;
    return cand < best;
}

bool
Attempt::place(OpId v)
{
    const auto &op = graph_.loop().op(v);
    const Cycle hit_lat = graph_.opLatency(v);
    const bool mem_select = options_.memoryAware && op.isMemory() &&
                            options_.locality != nullptr;

    // Evaluate every cluster with the hit latency.
    ClusterId best = INVALID_ID;
    Placement best_placement;
    double best_miss = 0.0;
    for (ClusterId c = 0; c < machine_.nClusters; ++c) {
        auto p = trySlot(v, c, hit_lat);
        if (!p)
            continue;
        const double miss = mem_select ? addedMisses(v, c) : 0.0;
        if (best == INVALID_ID ||
            betterCluster(v, c, best, miss, best_miss, mem_select)) {
            best = c;
            best_placement = std::move(*p);
            best_miss = miss;
        }
    }
    if (best == INVALID_ID)
        return false;

    // Binding prefetching: promote likely-missing loads to the miss
    // latency in their chosen cluster (§4.3). A load whose CME miss
    // ratio exceeds the threshold is promoted; so is a load with
    // same-line (spatial group) reuse of an already-promoted leader in
    // the same cluster — its data rides the leader's outstanding fill,
    // so its consumers face the same worst-case latency (the spatial-
    // locality case §4.3 calls out).
    bool promoted = false;
    if (op.isLoad() && options_.missThreshold < 1.0 - EPS &&
        options_.locality != nullptr) {
        const double ratio = options_.locality->missRatio(
            mem_set_[static_cast<std::size_t>(best)], v,
            machine_.clusterCacheGeom());
        bool rides_promoted_fill = false;
        if (ratio <= options_.missThreshold + EPS) {
            const cme::ReuseAnalysis reuse(graph_.loop());
            for (OpId u : mem_set_[static_cast<std::size_t>(best)]) {
                if (!sched_.placed(u).missScheduled)
                    continue;
                const auto delta = reuse.byteDelta(v, u);
                if (delta && std::llabs(*delta) <
                                 machine_.cacheLineBytes) {
                    rides_promoted_fill = true;
                    break;
                }
            }
        }
        const Cycle miss_lat = machine_.missLatency();
        if ((ratio > options_.missThreshold + EPS ||
             rides_promoted_fill) &&
            miss_lat > hit_lat) {
            bool allowed = true;
            if (graph_.inRecurrence(v)) {
                ddg::LatencyOverrides probe = overrides_;
                probe[v] = miss_lat;
                allowed = graph_.feasibleII(ii_, probe);
            }
            if (allowed) {
                if (auto p = trySlot(v, best, miss_lat)) {
                    commit(v, best, *p, true);
                    promoted = true;
                }
            }
        }
    }
    if (!promoted)
        commit(v, best, best_placement, false);
    return true;
}

void
Attempt::normalize()
{
    Cycle min_time = 0;
    for (const auto &p : sched_.placements())
        min_time = std::min(min_time, p.time);
    if (min_time >= 0)
        return;
    const Cycle shift = ((-min_time + ii_ - 1) / ii_) * ii_;
    for (std::size_t v = 0; v < graph_.size(); ++v)
        sched_.placed(static_cast<OpId>(v)).time += shift;
    for (auto &c : sched_.comms())
        c.xferStart += shift;
}

bool
Attempt::checkRegisters()
{
    const LifetimeStats lt = computeLifetimes(graph_, sched_, machine_);
    sched_.setMaxLive(lt.maxLivePerCluster);
    for (int ml : lt.maxLivePerCluster)
        if (ml > machine_.regsPerCluster)
            return false;
    return true;
}

} // namespace

ClusteredModuloScheduler::ClusteredModuloScheduler(
    const ddg::Ddg &graph, const MachineConfig &machine,
    SchedulerOptions options)
    : graph_(graph), machine_(machine), options_(options)
{
    if ((options_.memoryAware ||
         options_.missThreshold < 1.0 - EPS) &&
        options_.locality == nullptr)
        mvp_fatal("scheduler options require a locality analysis");
    if (options_.locality &&
        &options_.locality->loop() != &graph.loop())
        mvp_fatal("locality analysis bound to a different loop");
}

ScheduleResult
ClusteredModuloScheduler::run()
{
    ScheduleResult result;
    result.stats.resMii = resMii(graph_.loop(), machine_);
    result.stats.recMii = graph_.recMii();
    result.stats.mii =
        std::max(result.stats.resMii, result.stats.recMii);

    // The ordering is computed once at mII and kept across II bumps.
    const auto order = computeOrdering(graph_, result.stats.mii);
    result.stats.orderingBothNeighbours =
        bothNeighbourCount(graph_, order);

    for (Cycle ii = result.stats.mii; ii <= options_.maxII; ++ii) {
        ++result.stats.iiAttempts;
        Attempt attempt(graph_, machine_, options_, ii);
        bool ok = true;
        for (OpId v : order) {
            if (!attempt.place(v)) {
                mvp_verbose("loop '", graph_.loop().name(), "' II=", ii,
                            ": op ", v, " unplaceable");
                ok = false;
                break;
            }
        }
        if (!ok)
            continue;
        attempt.normalize();
        if (!attempt.checkRegisters()) {
            mvp_verbose("loop '", graph_.loop().name(), "' II=", ii,
                        ": register pressure exceeded");
            continue;
        }

        if (options_.locality) {
            const CacheGeom geom = machine_.clusterCacheGeom();
            for (const auto &set : attempt.memSets())
                result.stats.predictedMissesPerIter +=
                    options_.locality->missesPerIteration(set, geom);
        }
        result.ok = true;
        result.schedule = attempt.takeSchedule();
        result.stats.comms =
            static_cast<int>(result.schedule.numComms());
        result.stats.missScheduledLoads =
            result.schedule.missScheduledLoads();
        return result;
    }

    result.error = "no feasible II up to " +
                   std::to_string(options_.maxII) + " for loop '" +
                   graph_.loop().name() + "'";
    return result;
}

ScheduleResult
scheduleBaseline(const ddg::Ddg &graph, const MachineConfig &machine,
                 double miss_threshold, cme::LocalityAnalysis *locality)
{
    SchedulerOptions opt;
    opt.memoryAware = false;
    opt.missThreshold = miss_threshold;
    opt.locality = locality;
    return ClusteredModuloScheduler(graph, machine, opt).run();
}

ScheduleResult
scheduleRmca(const ddg::Ddg &graph, const MachineConfig &machine,
             double miss_threshold, cme::LocalityAnalysis &locality)
{
    SchedulerOptions opt;
    opt.memoryAware = true;
    opt.missThreshold = miss_threshold;
    opt.locality = &locality;
    return ClusteredModuloScheduler(graph, machine, opt).run();
}

} // namespace mvp::sched
