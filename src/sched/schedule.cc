#include "sched/schedule.hh"

#include <algorithm>
#include <map>
#include <sstream>

#include "common/logging.hh"
#include "common/strutil.hh"

namespace mvp::sched
{

ModuloSchedule::ModuloSchedule(Cycle ii, std::size_t n_ops, int n_clusters)
    : ii_(ii), n_clusters_(n_clusters), placed_(n_ops)
{
    mvp_assert(ii >= 1, "II must be positive");
}

void
ModuloSchedule::reset(Cycle ii, std::size_t n_ops, int n_clusters)
{
    mvp_assert(ii >= 1, "II must be positive");
    ii_ = ii;
    n_clusters_ = n_clusters;
    placed_.assign(n_ops, PlacedOp{});
    comms_.clear();
    max_live_.clear();
}

int
ModuloSchedule::stageCount() const
{
    Cycle max_time = 0;
    for (const auto &p : placed_)
        max_time = std::max(max_time, p.time);
    return static_cast<int>(max_time / ii_) + 1;
}

const PlacedOp &
ModuloSchedule::placed(OpId op) const
{
    mvp_assert(op >= 0 && static_cast<std::size_t>(op) < placed_.size(),
               "bad op id");
    return placed_[static_cast<std::size_t>(op)];
}

PlacedOp &
ModuloSchedule::placed(OpId op)
{
    mvp_assert(op >= 0 && static_cast<std::size_t>(op) < placed_.size(),
               "bad op id");
    return placed_[static_cast<std::size_t>(op)];
}

std::vector<OpId>
ModuloSchedule::opsInCluster(ClusterId cluster) const
{
    std::vector<OpId> out;
    for (std::size_t i = 0; i < placed_.size(); ++i)
        if (placed_[i].cluster == cluster)
            out.push_back(static_cast<OpId>(i));
    return out;
}

int
ModuloSchedule::missScheduledLoads() const
{
    int n = 0;
    for (const auto &p : placed_)
        n += p.missScheduled ? 1 : 0;
    return n;
}

Cycle
ModuloSchedule::computeCycles(std::int64_t n_iter) const
{
    return (n_iter + stageCount() - 1) * ii_;
}

std::string
ModuloSchedule::validate(const ddg::Ddg &graph,
                         const MachineConfig &machine) const
{
    std::ostringstream err;
    const auto n = graph.size();
    if (placed_.size() != n)
        return "schedule covers a different number of ops than the DDG";

    // 1. Placement sanity.
    for (std::size_t i = 0; i < n; ++i) {
        const auto &p = placed_[i];
        if (p.cluster < 0 || p.cluster >= machine.nClusters)
            err << "op " << i << " in invalid cluster " << p.cluster
                << "\n";
        if (p.time < 0)
            err << "op " << i << " has negative time\n";
    }

    // Index communications by (producer, destination).
    std::map<std::pair<OpId, ClusterId>, const Comm *> comm_of;
    for (const auto &c : comms_) {
        if (c.from == c.to)
            err << "comm of op " << c.producer << " to its own cluster\n";
        if (c.producer < 0 || static_cast<std::size_t>(c.producer) >= n) {
            err << "comm with bad producer\n";
            continue;
        }
        const auto &p = placed_[static_cast<std::size_t>(c.producer)];
        if (p.cluster != c.from)
            err << "comm of op " << c.producer << " departs cluster "
                << c.from << " but the op is in " << p.cluster << "\n";
        if (c.xferStart < p.time + p.outLatency)
            err << "comm of op " << c.producer
                << " departs before the value is produced\n";
        const auto key = std::make_pair(c.producer, c.to);
        if (comm_of.count(key))
            err << "duplicate comm of op " << c.producer << " to cluster "
                << c.to << "\n";
        comm_of[key] = &c;
    }

    // 2. Dependence constraints.
    for (const auto &e : graph.edges()) {
        const auto &pu = placed_[static_cast<std::size_t>(e.src)];
        const auto &pv = placed_[static_cast<std::size_t>(e.dst)];
        const Cycle budget = pv.time + ii_ * e.distance;

        if (e.isRegFlow() && pu.cluster != pv.cluster) {
            const auto it =
                comm_of.find(std::make_pair(e.src, pv.cluster));
            if (it == comm_of.end()) {
                err << "edge " << e.src << "->" << e.dst
                    << " crosses clusters without a comm\n";
                continue;
            }
            const Comm &c = *it->second;
            if (c.xferStart + machine.regBusLatency > budget)
                err << "edge " << e.src << "->" << e.dst
                    << ": value arrives at "
                    << c.xferStart + machine.regBusLatency
                    << " after use at " << budget << "\n";
        } else {
            const Cycle lat =
                e.isRegFlow() ? pu.outLatency : e.latency;
            if (pu.time + lat > budget)
                err << "edge " << e.src << "->" << e.dst << " ("
                    << ddg::edgeKindName(e.kind) << "): " << pu.time
                    << "+" << lat << " > " << budget << "\n";
        }
    }

    // 3. FU capacity per modulo slot.
    for (Cycle s = 0; s < ii_; ++s) {
        for (ClusterId c = 0; c < machine.nClusters; ++c) {
            int used[ir::NUM_FU_TYPES] = {0, 0, 0};
            for (std::size_t i = 0; i < n; ++i) {
                if (placed_[i].cluster != c || placed_[i].time % ii_ != s)
                    continue;
                ++used[static_cast<int>(
                    graph.loop().op(static_cast<OpId>(i)).fuType())];
            }
            for (int t = 0; t < ir::NUM_FU_TYPES; ++t) {
                const auto type = static_cast<ir::FuType>(t);
                if (used[t] > machine.fusPerCluster(type))
                    err << "slot " << s << " cluster " << c
                        << " oversubscribes " << ir::fuTypeName(type)
                        << " (" << used[t] << " > "
                        << machine.fusPerCluster(type) << ")\n";
            }
        }
    }

    // 4. Bus capacity: a transfer holds its bus for the full latency.
    if (!machine.unboundedRegBuses) {
        std::map<std::pair<Cycle, int>, int> bus_use;
        for (const auto &c : comms_) {
            if (c.bus < 0 || c.bus >= machine.nRegBuses) {
                err << "comm of op " << c.producer << " uses bad bus "
                    << c.bus << "\n";
                continue;
            }
            if (machine.regBusLatency > ii_)
                err << "bus latency " << machine.regBusLatency
                    << " exceeds II " << ii_
                    << ": transfers overlap themselves\n";
            for (Cycle k = 0; k < machine.regBusLatency; ++k) {
                const Cycle s = (c.xferStart + k) % ii_;
                if (++bus_use[{s, c.bus}] > 1)
                    err << "bus " << c.bus << " double-booked at slot "
                        << s << "\n";
            }
        }
    }

    // 5. Register pressure.
    if (!max_live_.empty()) {
        for (std::size_t c = 0; c < max_live_.size(); ++c)
            if (max_live_[c] > machine.regsPerCluster)
                err << "cluster " << c << " needs " << max_live_[c]
                    << " registers, has " << machine.regsPerCluster
                    << "\n";
    }

    return err.str();
}

std::string
ModuloSchedule::toString(const ddg::Ddg &graph,
                         const MachineConfig &machine) const
{
    std::ostringstream os;
    os << "II=" << ii_ << " SC=" << stageCount() << " comms="
       << comms_.size() << "\n";
    for (Cycle s = 0; s < ii_; ++s) {
        os << padLeft(std::to_string(s), 3) << " |";
        for (ClusterId c = 0; c < n_clusters_; ++c) {
            std::vector<std::string> cells;
            for (std::size_t i = 0; i < placed_.size(); ++i) {
                const auto &p = placed_[i];
                if (p.cluster != c || p.time % ii_ != s)
                    continue;
                const auto &op = graph.loop().op(static_cast<OpId>(i));
                std::string label = op.name.empty()
                                        ? std::string(opcodeName(op.opcode))
                                        : op.name;
                label += "(" + std::to_string(p.time / ii_) + ")";
                if (p.missScheduled)
                    label += "*";
                cells.push_back(label);
            }
            os << " " << padRight(join(cells, " "), 24) << " |";
        }
        // Bus column.
        std::vector<std::string> bus_cells;
        for (const auto &cm : comms_) {
            for (Cycle k = 0; k < machine.regBusLatency; ++k) {
                if ((cm.xferStart + k) % ii_ == s) {
                    bus_cells.push_back(
                        "C%" + std::to_string(cm.producer) + "->" +
                        std::to_string(cm.to));
                    break;
                }
            }
        }
        os << " " << join(bus_cells, " ") << "\n";
    }
    return os.str();
}

} // namespace mvp::sched
