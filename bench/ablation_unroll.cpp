/**
 * @file
 * Evaluation of the paper's un-evaluated suggestion (§4.3): unroll a
 * loop by the cache-line length so that one instance of each spatially-
 * local load always misses and the rest always hit, letting the
 * threshold mechanism promote exactly the missing instance instead of
 * all-or-nothing.
 *
 * Runs the su2cor and turb3d suites (their inner trips divide the
 * factors) at unroll factors 1/2/4/8 on the 2-cluster machine with
 * realistic buses, RMCA at thresholds 0.75 and 0.00.
 */

#include <cstdio>

#include "cme/solver.hh"
#include "common/strutil.hh"
#include "common/table.hh"
#include "ddg/ddg.hh"
#include "ir/transform.hh"
#include "machine/presets.hh"
#include "sched/scheduler.hh"
#include "sim/simulator.hh"
#include "workloads/workloads.hh"

using namespace mvp;

int
main()
{
    const auto machine = withLimitedBuses(makeTwoCluster(), 1, 1);
    std::printf("machine: %s\n\n", machine.summary().c_str());

    TextTable table({"suite", "unroll", "thr", "mean II/elem",
                     "promoted", "compute", "stall", "total"});
    table.setTitle("Unrolling x binding prefetching (RMCA)");

    for (const char *suite : {"su2cor", "turb3d"}) {
        const auto bench = workloads::benchmarkByName(suite);
        for (int factor : {1, 2, 4, 8}) {
            for (double thr : {0.75, 0.0}) {
                Cycle compute = 0;
                Cycle stall = 0;
                double ii_per_elem = 0;
                int promoted = 0;
                int counted = 0;
                for (const auto &loop : bench.loops) {
                    if (loop.innerTripCount() % factor != 0)
                        continue;
                    const auto unrolled =
                        ir::unrollInner(loop, factor);
                    const auto g =
                        ddg::Ddg::build(unrolled, machine);
                    cme::CmeAnalysis cme(unrolled);
                    auto r = sched::scheduleRmca(g, machine, thr, cme);
                    if (!r.ok) {
                        std::printf("  %s x%d failed: %s\n",
                                    loop.name().c_str(), factor,
                                    r.error.c_str());
                        continue;
                    }
                    const auto sim = sim::simulateLoop(g, r.schedule,
                                                       machine);
                    compute += sim.computeCycles;
                    stall += sim.stallCycles;
                    ii_per_elem +=
                        static_cast<double>(r.schedule.ii()) / factor;
                    promoted += r.stats.missScheduledLoads;
                    ++counted;
                }
                table.addRow({suite, std::to_string(factor),
                              fmtDouble(thr, 2),
                              fmtDouble(ii_per_elem / counted, 2),
                              std::to_string(promoted),
                              std::to_string(compute),
                              std::to_string(stall),
                              std::to_string(compute + stall)});
            }
        }
        table.addRule();
    }
    std::printf("%s\n", table.render().c_str());
    std::printf(
        "Reading the table: at threshold 0.75 the un-unrolled loops "
        "promote nothing\n(spatial loads miss only 12-25%% of the "
        "time), so stalls stay; unrolling by the\nline length "
        "concentrates the misses in one instance whose ratio ~100%% "
        "crosses\nany threshold -- stalls drop without paying the miss "
        "latency on every copy.\n");
    return 0;
}
