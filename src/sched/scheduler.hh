/**
 * @file
 * Unified assign-and-schedule modulo scheduler for multiVLIWprocessors.
 *
 * One engine implements both schedulers of the paper:
 *
 *  - Baseline ([22]): cluster selection for every operation maximises the
 *    profit from output register edges (equivalently: most already-placed
 *    register neighbours in the cluster), tie-broken on workload balance.
 *  - RMCA (this paper): memory operations instead choose the cluster
 *    where the Cache Miss Equations report the smallest increase in
 *    misses; ties fall back to the register heuristic.
 *
 * Independently of cluster selection, a load whose CME miss ratio in its
 * chosen cluster exceeds the threshold is scheduled with the cache-miss
 * latency (binding prefetching), unless that would make the current II
 * infeasible through a recurrence.
 *
 * An operation that cannot be placed (no FU slot, saturated buses) or a
 * register file overflowing MaxLive aborts the attempt; the II is then
 * increased and everything except the node ordering restarts (§4.1).
 */

#ifndef MVP_SCHED_SCHEDULER_HH
#define MVP_SCHED_SCHEDULER_HH

#include <cstdint>
#include <string>

#include "cme/locality.hh"
#include "ddg/ddg.hh"
#include "machine/machine.hh"
#include "sched/context.hh"
#include "sched/schedule.hh"

namespace mvp::sched
{

/**
 * Historical default branch-and-bound node budget per II attempt
 * (exact backend). The node budget is deprecated in favour of the
 * wall-clock budget below — SchedulerOptions::searchBudget now
 * defaults to 0 (uncapped) — but the constant stays for callers and
 * tests that want a machine-independent, deterministic starvation
 * point.
 */
constexpr std::int64_t DEFAULT_SEARCH_BUDGET = 2'000'000;

/**
 * Default wall-clock budget of the exact search, in milliseconds; one
 * shared constant so the scheduler, harness, benches and docs cannot
 * drift apart. Negative disables the deadline entirely; 0 is an
 * already-expired deadline (deterministic immediate degradation).
 */
constexpr std::int64_t DEFAULT_TIME_BUDGET_MS = 10'000;

/**
 * Default node allowance of the register-pressure tiebreak phase
 * (nodes charged after the first feasible schedule at the minimal II).
 * Deliberately node-based, not wall-clock: the tiebreak's outcome
 * (which schedule, pressureOptimal) then stays a pure function of
 * (loop, machine, options), which is what keeps gap tables and
 * differential reports byte-identical across machines and job counts.
 * The II certificate itself is never affected — it is decided before
 * the tiebreak starts.
 */
constexpr std::int64_t DEFAULT_TIEBREAK_BUDGET = 150'000;

/** Scheduler configuration. */
struct SchedulerOptions
{
    /** RMCA cluster selection for memory operations. */
    bool memoryAware = false;

    /**
     * Miss-latency scheduling threshold in [0, 1]: a load is promoted to
     * the miss latency when its miss ratio is strictly greater. 1.0
     * disables promotion (always hit latency); 0.0 promotes every load
     * with a non-zero miss ratio, the scheme of [21].
     */
    double missThreshold = 1.0;

    /**
     * Bound locality analysis; consulted when memoryAware or
     * missThreshold < 1. Not owned. When null, the registry backends
     * (sched/backend.hh) bind localityProvider to the loop for the
     * duration of the call; constructing ClusteredModuloScheduler
     * directly still requires a non-null analysis.
     */
    cme::LocalityAnalysis *locality = nullptr;

    /**
     * Locality provider by registry name (cme/provider.hh: "cme",
     * "oracle", "hybrid", or anything registered at runtime) — the
     * fallback the registry backends bind when `locality` is null.
     * Empty is read as "cme". Callers on a hot path should bind once
     * and pass `locality` instead: a per-call binding rebuilds the
     * analysis (and its memo) every schedule.
     */
    std::string localityProvider = "cme";

    /** Give up (fail the loop) beyond this II. */
    Cycle maxII = 512;

    /**
     * Deprecated branch-and-bound node cap of the exact backend, per
     * II attempt (candidate placements evaluated); 0 = uncapped, the
     * default, leaving timeBudgetMs in charge. When an attempt runs
     * out the search degrades gracefully: an unrefuted II is skipped
     * rather than proven, later schedules lose the optimality
     * certificate ("gap unknown"), and a budget-capped pressure
     * tiebreak keeps the best schedule seen. Ignored by the heuristic
     * backends.
     */
    std::int64_t searchBudget = 0;

    /**
     * Wall-clock budget of the exact search in milliseconds (whole
     * search, all II attempts). Negative = unlimited, 0 = expired on
     * entry; degradation is the same "gap unknown" path as the node
     * cap. Ignored by the heuristic backends.
     */
    std::int64_t timeBudgetMs = DEFAULT_TIME_BUDGET_MS;

    /**
     * Node allowance of the exact tiebreak phase (see
     * DEFAULT_TIEBREAK_BUDGET); 0 = unlimited. Ignored by the
     * heuristic backends.
     */
    std::int64_t tiebreakBudget = DEFAULT_TIEBREAK_BUDGET;

    /**
     * Exact engine the verify backend certifies the heuristic against:
     * "exact" (serial branch and bound, the default) or "portfolio"
     * (II-probe racing + subtree splitting on a worker pool). Any
     * registered backend name works; "verify" itself falls back to
     * "exact".
     */
    std::string exactBackend = "exact";

    /**
     * Worker count of the portfolio backend's internal pool; 0 (the
     * default) means harness::defaultJobs() (MVP_JOBS / hardware).
     * Ignored by every other backend.
     */
    int searchJobs = 0;

    /**
     * Deterministic conflict cap of the sat backend, per II attempt;
     * 0 = uncapped, the default, leaving timeBudgetMs in charge (the
     * CDCL analogue of searchBudget, and the same "gap unknown"
     * degradation). Ignored by every other backend.
     */
    std::int64_t satConflictBudget = 0;
};

/** Static quantities the scheduler reports alongside the schedule. */
struct SchedStats
{
    Cycle resMii = 0;
    Cycle recMii = 0;
    Cycle mii = 0;
    int iiAttempts = 0;
    int comms = 0;                    ///< register communications/iteration
    int missScheduledLoads = 0;
    int orderingBothNeighbours = 0;   ///< ordering-quality metric of [22]
    double predictedMissesPerIter = 0.0;   ///< CME estimate, all clusters

    /** @name Exact-backend / verify-mode fields (zero for heuristics) */
    /// @{
    /** II carries an optimality certificate (II == proven lower bound). */
    bool provenOptimal = false;
    /** Tightest II lower bound established (MII, raised by refutation). */
    Cycle iiLowerBound = 0;
    /** Register-pressure tiebreak search ran to completion. */
    bool pressureOptimal = false;
    /** Branch-and-bound candidates evaluated. */
    std::int64_t searchNodes = 0;
    /** Search stopped on the node budget ("gap unknown"). */
    bool budgetExhausted = false;
    /** Verify mode: the exact backend solved within budget. */
    bool gapKnown = false;
    /** Verify mode: II of the exact schedule (0 when unsolved). */
    Cycle exactII = 0;
    /** Verify mode: heuristic II - exact II (>= 0 when gapKnown). */
    Cycle iiGap = 0;
    /// @}
};

/** Scheduling outcome. */
struct ScheduleResult
{
    bool ok = false;
    std::string error;
    ModuloSchedule schedule;
    SchedStats stats;
};

/**
 * The scheduling engine. Construct once per loop and call run().
 */
class ClusteredModuloScheduler
{
  public:
    ClusteredModuloScheduler(const ddg::Ddg &graph,
                             const MachineConfig &machine,
                             SchedulerOptions options);

    /**
     * Schedule the loop using the caller's scratch context; never
     * throws, reports failure in the result. A warm context makes the
     * run allocation-free; one context must not serve two schedulers
     * concurrently.
     */
    ScheduleResult run(SchedContext &ctx);

    /** Convenience: run with a transient context. */
    ScheduleResult run();

  private:
    const ddg::Ddg &graph_;
    const MachineConfig &machine_;
    SchedulerOptions options_;
};

/** Convenience: baseline scheduler ([22]) with a miss threshold. */
ScheduleResult scheduleBaseline(const ddg::Ddg &graph,
                                const MachineConfig &machine,
                                double miss_threshold = 1.0,
                                cme::LocalityAnalysis *locality = nullptr);

/** Convenience: RMCA scheduler with a miss threshold. */
ScheduleResult scheduleRmca(const ddg::Ddg &graph,
                            const MachineConfig &machine,
                            double miss_threshold,
                            cme::LocalityAnalysis &locality);

} // namespace mvp::sched

#endif // MVP_SCHED_SCHEDULER_HH
