/**
 * @file
 * The service's wire protocol: line-framed commands with length-framed
 * payloads, transport-agnostic.
 *
 * Client -> server, one command per line:
 *
 *     REQ <id> <nbytes>\n<payload>\n   queue one request (payload:
 *                                      svc/protocol.hh grammar)
 *     FLUSH\n                          serve the queued batch
 *     STATS\n                          service counters snapshot
 *     SAVE <nbytes>\n<path>\n          persist warm state to <path>
 *     LOAD <nbytes>\n<path>\n          load warm state from <path>
 *     QUIT\n                           flush, say BYE, end the session
 *
 * Server -> client:
 *
 *     REP <id> <nbytes>\n<payload>\n   one per REQ, in submission
 *                                      order, after FLUSH
 *     STATS <nbytes>\n<payload>\n
 *     OK save\n / OK load\n
 *     ERR <nbytes>\n<message>\n        SAVE/LOAD failure (session
 *                                      continues) or a framing error
 *                                      (session closes — the stream
 *                                      is desynchronised)
 *     BYE\n
 *
 * A malformed *payload* is not a framing error: it produces a normal
 * REP whose body is `status error` — ids stay aligned and the server
 * survives (svc/service.hh error containment). Only an unparseable
 * frame header closes the session.
 *
 * ServiceSession is a pure byte transformer — feed it input chunks of
 * any size, collect output bytes — so the stdio server, the TCP
 * reactor and in-process tests/benches all drive the identical state
 * machine.
 *
 * Zero-parse warm lane: a REQ payload is first probed byte-for-byte
 * against the service's raw reply lane (svc/cache.hh). A hit resolves
 * the frame immediately — no parsing, no canonical printing, no trip
 * through the worker pool — and its REP is emitted at the next FLUSH
 * in submission order, interleaved correctly with cold frames from
 * the same batch. Because raw entries alias the canonical cache's
 * reply bytes, the warm reply is byte-identical to the cold one.
 */

#ifndef MVP_SVC_SESSION_HH
#define MVP_SVC_SESSION_HH

#include <cstddef>
#include <string>
#include <vector>

#include "svc/protocol.hh"
#include "svc/service.hh"

namespace mvp::svc
{

/** Refuse absurd frames before allocating for them. */
constexpr std::size_t MAX_FRAME_BYTES = std::size_t(1) << 26;

class ServiceSession
{
  public:
    explicit ServiceSession(SchedService &service) : svc_(service) {}

    /**
     * Feed @p n input bytes; append whatever the session emits to
     * @p out. Returns false once the session has closed (QUIT or a
     * framing error) — further input is ignored.
     */
    bool consume(const char *data, std::size_t n, std::string &out);

    /** consume() for strings (tests, benches). */
    bool consume(const std::string &data, std::string &out)
    {
        return consume(data.data(), data.size(), out);
    }

    /**
     * End of input without QUIT: serve any queued requests (their
     * REPs land in @p out) so a piped client that forgot the final
     * FLUSH still gets its replies.
     */
    void finish(std::string &out);

    bool closed() const { return closed_; }

  private:
    enum class Mode { Line, Payload };

    /** One queued REQ frame: either already resolved from the raw
     * lane (no parse happened) or parsed and awaiting the batch. */
    struct PendingReq
    {
        std::string id;
        ReplyBytes resolved;   ///< nullptr until served
        Request parsed;        ///< meaningful only while !resolved
    };

    void handleLine(const std::string &line, std::string &out);
    void handlePayload(std::string &&payload, std::string &out);
    void flushBatch(std::string &out);
    void protocolError(const std::string &message, std::string &out);

    SchedService &svc_;
    std::string buffer_;
    Mode mode_ = Mode::Line;
    bool closed_ = false;

    std::string pending_cmd_;   ///< REQ / SAVE / LOAD awaiting payload
    std::string pending_id_;
    std::size_t pending_bytes_ = 0;

    std::vector<PendingReq> pending_;
};

} // namespace mvp::svc

#endif // MVP_SVC_SESSION_HH
