#include "harness/motivating.hh"

#include "ir/builder.hh"

namespace mvp::harness
{

ir::LoopNest
motivatingLoop(std::int64_t n_iter, std::int64_t n_times)
{
    using namespace mvp::ir;
    // I runs 1, 3, 5, ... : one iteration handles elements 2k and 2k+1.
    LoopNestBuilder b("fig3.motivating");
    b.loop("rep", 0, n_times);
    b.loop("k", 0, n_iter);
    const std::int64_t elems = 2 * n_iter;
    // Local caches are 4 KB; B and C sit 8 KB apart (a multiple of the
    // local cache size, as the example requires). At the default size
    // each array is 8 KB, so like the paper's arrays none of them is
    // cache-resident and the 8-elements-per-line spatial pattern gives
    // the steady-state 25% line-miss rate of Section 3.
    const auto A = b.arrayAt("A", {elems},
                             0x40000 + 2 * 0x2000 + 0x480);
    const auto B = b.arrayAt("B", {elems}, 0x40000);
    const auto C = b.arrayAt("C", {elems}, 0x40000 + 0x2000);

    const auto ld1 = b.load(B, {affineVar(1, 2, 0)}, "LD1");
    const auto ld2 = b.load(C, {affineVar(1, 2, 0)}, "LD2");
    const auto ld3 = b.load(B, {affineVar(1, 2, 1)}, "LD3");
    const auto ld4 = b.load(C, {affineVar(1, 2, 1)}, "LD4");
    const auto mul1 = b.op(Opcode::FMul, {use(ld1), use(ld2)}, "MUL1");
    const auto mul2 = b.op(Opcode::FMul, {use(ld3), use(ld4)}, "MUL2");
    const auto add = b.op(Opcode::FAdd, {use(mul1), use(mul2)}, "ADD");
    b.store(A, {affineVar(1, 2, 0)}, use(add), "ST");
    return b.build();
}

MachineConfig
motivatingMachine()
{
    MachineConfig m;
    m.name = "fig3-2cluster";
    m.nClusters = 2;
    m.intFusPerCluster = 1;    // unused by the example's FP/MEM mix
    m.fpFusPerCluster = 1;     // "one unit for arithmetic operations"
    m.memFusPerCluster = 1;    // "one for memory operations"
    m.regsPerCluster = 32;
    m.nRegBuses = 1;           // "one inter-register bus"
    m.regBusLatency = 2;       // "with a 2-cycle latency"
    m.nMemBuses = 1;
    m.memBusLatency = 2;       // "2 cycles for a bus transaction"
    m.unboundedMemBuses = true;   // "assume we have sufficient buses"
    m.totalCacheBytes = 8192;  // 4 KB direct-mapped per cluster
    m.cacheLineBytes = 32;     // "eight data elements per cache block"
    m.cacheAssoc = 1;
    m.latCacheHit = 2;         // "2 cycles for a local cache"
    m.latMainMemory = 10;      // "10 cycles for ... main memory"
    m.latFp = 2;               // "arithmetic ... 2-cycle latency"
    m.validate();
    return m;
}

} // namespace mvp::harness
