#include "sched/exact/bnb.hh"

#include <algorithm>

#include "common/logging.hh"
#include "sched/lifetimes.hh"
#include "sched/mii.hh"
#include "sched/mrt.hh"
#include "sched/ordering.hh"

namespace mvp::sched::exact
{

namespace
{

constexpr Cycle NO_BOUND = CYCLE_MAX / 4;

/** Outcome of one DFS subtree. */
enum class Walk
{
    Continue,   ///< subtree exhausted, keep searching siblings
    Stop,       ///< a satisfying schedule was found, unwind
    Abort,      ///< node budget exhausted, unwind
};

/**
 * One committed transfer, kept on an undo stack so backtracking can
 * release the bus and the comm-start entry it booked.
 */
struct BookedComm
{
    OpId producer;
    ClusterId from;
    ClusterId to;
    Cycle xferStart;
    std::size_t xferSlot;
    int bus;
};

/**
 * Depth-first branch-and-bound over (op -> cluster, cycle) placements
 * at one II at a time. State mirrors the heuristic Attempt — the same
 * Mrt, the same comm-start table, the same neighbour windows — but
 * every commit is invertible, which is what turns the greedy placement
 * loop into an exhaustive search. Two symmetry breaks keep the tree
 * small without losing any schedule shape:
 *
 *  - the first op is pinned to cycle 0 (modulo schedules are
 *    shift-invariant, so every solution has a shifted twin there);
 *  - an op may only enter a cluster that is already populated or the
 *    single lowest-numbered empty one (clusters are interchangeable in
 *    the machine model, so every solution has a relabelled twin whose
 *    clusters first appear in DFS order).
 */
class Searcher
{
  public:
    Searcher(const ddg::Ddg &graph, const MachineConfig &machine,
             const BnbOptions &options, SchedContext &ctx)
        : graph_(graph), machine_(machine), options_(options), ctx_(ctx),
          mrt_(machine, 1), sched_(1, graph.size(), machine.nClusters)
    {
        const auto n = graph_.size();
        const auto nc = static_cast<std::size_t>(machine_.nClusters);
        placed_.assign(n, 0);
        comm_start_.assign(n * nc, CYCLE_MAX);
        out_budget_.assign(nc, CYCLE_MAX);
        in_min_dist_.assign(n, DIST_UNSET);
        cluster_pop_.assign(nc, 0);
        need_in_.resize(n);
        need_out_.resize(n);
        in_nbs_.resize(n);
        out_nbs_.resize(n);
        for (int f = 0; f < ir::NUM_FU_TYPES; ++f) {
            remaining_[f] = 0;
            used_[f] = 0;
        }
        for (std::size_t v = 0; v < n; ++v)
            ++remaining_[static_cast<int>(
                graph_.loop().op(static_cast<OpId>(v)).fuType())];
    }

    /** Run the full II iteration; fills the result. */
    ScheduleResult run();

  private:
    struct InNb
    {
        OpId src;
        int distance;
        bool isReg;
        Cycle iiDist;
        Cycle ready;      ///< producer time + out latency
        Cycle baseEarly;  ///< early bound without a bus transfer
        ClusterId cluster;
    };
    struct OutNb
    {
        bool isReg;
        ClusterId cluster;
        Cycle budget;      ///< consumer time + II * distance
        Cycle lateNonReg;  ///< budget - edge latency (non-register)
    };

    Walk dfs(std::size_t k);
    Walk leaf();
    Walk tryPlace(OpId v, ClusterId c, Cycle t, std::size_t slot,
                  std::size_t k);
    void snapshotNeighbours(OpId v, std::size_t k);
    bool bookTransfers(OpId v, ClusterId c, Cycle t, std::size_t k);
    void unbook(std::size_t mark);
    bool resourcesFit() const;

    /**
     * Charge one search node against the attempt budget; false means
     * the budget is exhausted and the attempt must abort. Every child
     * the search considers is charged exactly once — candidate
     * placements in tryPlace() and children pruned beforehand by an
     * empty dependence window alike — so the node count at which "gap
     * unknown" degradation triggers depends only on (loop, machine,
     * options), never on how a sweep is sharded.
     */
    bool chargeNode()
    {
        if (++nodes_ > attempt_limit_) {
            budget_hit_ = true;
            return false;
        }
        return true;
    }

    Cycle &commStart(OpId u, ClusterId c)
    {
        return comm_start_[static_cast<std::size_t>(u) *
                               static_cast<std::size_t>(
                                   machine_.nClusters) +
                           static_cast<std::size_t>(c)];
    }

    const ddg::Ddg &graph_;
    const MachineConfig &machine_;
    const BnbOptions &options_;
    SchedContext &ctx_;   ///< ordering + lifetime scratch

    Cycle ii_ = 1;
    Mrt mrt_;
    ModuloSchedule sched_;
    std::vector<OpId> order_;
    std::vector<char> placed_;
    std::vector<Cycle> comm_start_;
    std::vector<BookedComm> booked_;   ///< undo stack of transfers
    std::vector<int> cluster_pop_;     ///< ops per cluster
    ClusterId opened_ = 0;             ///< populated clusters

    /**
     * Depth-indexed scratch: unlike the heuristic's flat thread-local
     * buffers, the search re-enters the placement logic recursively,
     * so everything a level still needs after recursing lives in a
     * per-depth slot.
     */
    std::vector<std::vector<InNb>> in_nbs_;
    std::vector<std::vector<OutNb>> out_nbs_;
    /** Producers needing a new transfer: (producer, min distance). */
    std::vector<std::vector<std::pair<OpId, int>>> need_in_;
    /** Destination clusters needing a transfer: (cluster, budget). */
    std::vector<std::vector<std::pair<ClusterId, Cycle>>> need_out_;

    /** Transient dedup scratch, clean between uses. */
    std::vector<OpId> in_need_ids_;
    std::vector<int> in_min_dist_;
    std::vector<Cycle> out_budget_;

    /** FU-class counting bound. */
    int remaining_[ir::NUM_FU_TYPES];
    int used_[ir::NUM_FU_TYPES];

    std::int64_t nodes_ = 0;
    std::int64_t attempt_limit_ = 0;   ///< nodes_ cap of this II attempt
    bool budget_hit_ = false;

    bool found_ = false;
    Cycle best_pressure_ = CYCLE_MAX;
    ModuloSchedule best_;
    std::vector<int> best_max_live_;
};

void
Searcher::snapshotNeighbours(OpId v, std::size_t k)
{
    auto &ins = in_nbs_[k];
    auto &outs = out_nbs_[k];
    ins.clear();
    outs.clear();
    for (int ei : graph_.inEdges(v)) {
        const auto &e = graph_.edges()[static_cast<std::size_t>(ei)];
        if (e.src == v || !placed_[static_cast<std::size_t>(e.src)])
            continue;
        const auto &pu = sched_.placed(e.src);
        const Cycle ii_dist = ii_ * e.distance;
        const Cycle ready = pu.time + pu.outLatency;
        const Cycle base_early =
            (e.isRegFlow() ? ready : pu.time + e.latency) - ii_dist;
        ins.push_back({e.src, e.distance, e.isRegFlow(), ii_dist, ready,
                       base_early, pu.cluster});
    }
    for (int ei : graph_.outEdges(v)) {
        const auto &e = graph_.edges()[static_cast<std::size_t>(ei)];
        if (e.dst == v || !placed_[static_cast<std::size_t>(e.dst)])
            continue;
        const auto &pw = sched_.placed(e.dst);
        const Cycle budget = pw.time + ii_ * e.distance;
        outs.push_back(
            {e.isRegFlow(), pw.cluster, budget, budget - e.latency});
    }
}

/**
 * The per-class counting bound: every unplaced op needs one slot of
 * its FU class somewhere in the II x clusters reservation table.
 */
bool
Searcher::resourcesFit() const
{
    for (int f = 0; f < ir::NUM_FU_TYPES; ++f) {
        const auto type = static_cast<ir::FuType>(f);
        const int capacity =
            static_cast<int>(ii_) * machine_.totalFus(type);
        if (remaining_[f] > capacity - used_[f])
            return false;
    }
    return true;
}

/**
 * Book every cross-cluster transfer the placement (v -> c at t) needs,
 * earliest-fit on the lowest free bus (the same deterministic rule the
 * heuristic applies, so its schedules are all reachable). On failure
 * everything booked by this call is rolled back.
 */
bool
Searcher::bookTransfers(OpId v, ClusterId c, Cycle t, std::size_t k)
{
    const Cycle lrb = machine_.regBusLatency;
    const Cycle out_lat = graph_.opLatency(v);
    const std::size_t mark = booked_.size();

    for (const auto &[u, min_dist] : need_in_[k]) {
        const auto &pu = sched_.placed(u);
        const Cycle x_min = pu.time + pu.outLatency;
        const Cycle x_max = t + ii_ * min_dist - lrb;
        const Cycle hi = std::min(x_max, x_min + ii_ - 1);
        bool ok = false;
        if (x_min <= hi) {
            std::size_t sx = mrt_.slot(x_min);
            for (Cycle x = x_min; x <= hi; ++x) {
                const int bus = mrt_.findFreeBusAt(sx);
                if (bus != BUS_NONE) {
                    mrt_.reserveBusAt(bus, sx);
                    booked_.push_back({u, pu.cluster, c, x, sx, bus});
                    commStart(u, c) = x;
                    ok = true;
                    break;
                }
                sx = mrt_.nextSlot(sx);
            }
        }
        if (!ok) {
            unbook(mark);
            return false;
        }
    }

    for (const auto &[dest, budget] : need_out_[k]) {
        const Cycle x_min = t + out_lat;
        const Cycle x_max = budget - lrb;
        const Cycle hi = std::min(x_max, x_min + ii_ - 1);
        bool ok = false;
        if (x_min <= hi) {
            std::size_t sx = mrt_.slot(x_min);
            for (Cycle x = x_min; x <= hi; ++x) {
                const int bus = mrt_.findFreeBusAt(sx);
                if (bus != BUS_NONE) {
                    mrt_.reserveBusAt(bus, sx);
                    booked_.push_back({v, c, dest, x, sx, bus});
                    commStart(v, dest) = x;
                    ok = true;
                    break;
                }
                sx = mrt_.nextSlot(sx);
            }
        }
        if (!ok) {
            unbook(mark);
            return false;
        }
    }
    return true;
}

void
Searcher::unbook(std::size_t mark)
{
    while (booked_.size() > mark) {
        const BookedComm &bc = booked_.back();
        mrt_.releaseBusAt(bc.bus, bc.xferSlot);
        commStart(bc.producer, bc.to) = CYCLE_MAX;
        booked_.pop_back();
    }
}

Walk
Searcher::leaf()
{
    const LifetimeStats lt =
        computeLifetimes(graph_, sched_, machine_, ctx_.lifetimes);
    for (int ml : lt.maxLivePerCluster)
        if (ml > machine_.regsPerCluster)
            return Walk::Continue;   // dead leaf: register file overflow

    Cycle pressure = 0;
    for (int ml : lt.maxLivePerCluster)
        pressure += ml;
    if (!found_ || pressure < best_pressure_) {
        best_ = sched_;
        best_max_live_ = lt.maxLivePerCluster;
        best_pressure_ = pressure;
    }
    found_ = true;
    // Keep searching this II for a lower-pressure schedule (bounded by
    // the node budget), or stop at the first one when the tiebreak is
    // off.
    return options_.tiebreakPressure ? Walk::Continue : Walk::Stop;
}

Walk
Searcher::tryPlace(OpId v, ClusterId c, Cycle t, std::size_t slot,
                   std::size_t k)
{
    if (!chargeNode())
        return Walk::Abort;
    const auto fu = graph_.loop().op(v).fuType();
    if (!mrt_.fuFreeAt(slot, c, fu))
        return Walk::Continue;

    const std::size_t comm_mark = booked_.size();
    const std::size_t sched_comm_mark = sched_.comms().size();
    if (!bookTransfers(v, c, t, k))
        return Walk::Continue;

    // Commit the placement.
    auto &pv = sched_.placed(v);
    pv.cluster = c;
    pv.time = t;
    pv.outLatency = graph_.opLatency(v);
    pv.missScheduled = false;
    placed_[static_cast<std::size_t>(v)] = 1;
    mrt_.placeFu(t, c, fu);
    ++used_[static_cast<int>(fu)];
    --remaining_[static_cast<int>(fu)];
    if (cluster_pop_[static_cast<std::size_t>(c)]++ == 0)
        ++opened_;
    for (std::size_t i = comm_mark; i < booked_.size(); ++i) {
        const BookedComm &bc = booked_[i];
        sched_.comms().push_back(
            {bc.producer, bc.from, bc.to, bc.xferStart, bc.bus});
    }

    const Walk w = resourcesFit() ? dfs(k + 1) : Walk::Continue;

    // Undo in reverse commit order.
    sched_.comms().resize(sched_comm_mark);
    if (--cluster_pop_[static_cast<std::size_t>(c)] == 0)
        --opened_;
    ++remaining_[static_cast<int>(fu)];
    --used_[static_cast<int>(fu)];
    mrt_.removeFu(t, c, fu);
    placed_[static_cast<std::size_t>(v)] = 0;
    pv = PlacedOp{};
    unbook(comm_mark);
    return w;
}

Walk
Searcher::dfs(std::size_t k)
{
    if (k == order_.size())
        return leaf();

    const OpId v = order_[k];
    const Cycle lrb = machine_.regBusLatency;
    const Cycle out_lat = graph_.opLatency(v);

    snapshotNeighbours(v, k);
    const auto &ins = in_nbs_[k];
    const auto &outs = out_nbs_[k];
    const bool has_pred = !ins.empty();
    const bool has_succ = !outs.empty();

    // Cluster-symmetry break: populated clusters plus one fresh one.
    const ClusterId c_limit = std::min<ClusterId>(
        machine_.nClusters, opened_ + 1);
    for (ClusterId c = 0; c < c_limit; ++c) {
        // --- Window bounds and transfer needs for this cluster, the
        // same arithmetic as the heuristic's trySlot(). The dedup
        // scratch drains into this depth's need lists so recursion
        // below cannot clobber them. ---
        auto &need_in = need_in_[k];
        auto &need_out = need_out_[k];
        need_in.clear();
        need_out.clear();

        Cycle early = 0;
        Cycle late = NO_BOUND;
        for (const InNb &nb : ins) {
            if (nb.isReg && nb.cluster != c) {
                if (const Cycle cs = commStart(nb.src, c);
                    cs != CYCLE_MAX) {
                    early = std::max(early, cs + lrb - nb.iiDist);
                } else {
                    early = std::max(early, nb.ready + lrb - nb.iiDist);
                    auto &min_dist =
                        in_min_dist_[static_cast<std::size_t>(nb.src)];
                    if (min_dist == DIST_UNSET) {
                        in_need_ids_.push_back(nb.src);
                        min_dist = nb.distance;
                    } else {
                        min_dist = std::min(min_dist, nb.distance);
                    }
                }
            } else {
                early = std::max(early, nb.baseEarly);
            }
        }
        // Bus reservation order must not depend on edge-visit order.
        if (in_need_ids_.size() > 1)
            std::sort(in_need_ids_.begin(), in_need_ids_.end());
        for (OpId u : in_need_ids_) {
            need_in.emplace_back(
                u, in_min_dist_[static_cast<std::size_t>(u)]);
            in_min_dist_[static_cast<std::size_t>(u)] = DIST_UNSET;
        }
        in_need_ids_.clear();

        for (const OutNb &nb : outs) {
            if (nb.isReg && nb.cluster != c) {
                auto &b =
                    out_budget_[static_cast<std::size_t>(nb.cluster)];
                b = std::min(b, nb.budget);
            } else {
                late = std::min(late, nb.isReg ? nb.budget - out_lat
                                               : nb.lateNonReg);
            }
        }
        for (ClusterId dest = 0; dest < machine_.nClusters; ++dest) {
            auto &b = out_budget_[static_cast<std::size_t>(dest)];
            if (b != CYCLE_MAX) {
                late = std::min(late, b - lrb - out_lat);
                need_out.emplace_back(dest, b);
                b = CYCLE_MAX;
            }
        }
        // A cluster whose dependence window is empty is a pruned child:
        // charge it like any candidate so budget exhaustion triggers at
        // a sharding-independent node count.
        if (has_pred && has_succ && late < early) {
            if (!chargeNode())
                return Walk::Abort;
            continue;
        }

        // --- Enumerate every candidate cycle in the window (the
        // heuristic stops at the first fit; the search tries all). ---
        if (has_succ && !has_pred) {
            const Cycle hi = std::min(late, NO_BOUND);
            const Cycle lo = hi - ii_ + 1;
            std::size_t s = mrt_.slot(hi);
            for (Cycle t = hi; t >= lo; --t) {
                const Walk w = tryPlace(v, c, t, s, k);
                if (w != Walk::Continue)
                    return w;
                s = mrt_.prevSlot(s);
            }
        } else {
            // Shift-invariance: the root op anchors the schedule, so a
            // single candidate cycle covers every shifted solution.
            const Cycle hi = (k == 0 && !has_pred && !has_succ)
                                 ? early
                                 : std::min(late, early + ii_ - 1);
            std::size_t s = mrt_.slot(early);
            for (Cycle t = early; t <= hi; ++t) {
                const Walk w = tryPlace(v, c, t, s, k);
                if (w != Walk::Continue)
                    return w;
                s = mrt_.nextSlot(s);
            }
        }
    }
    return Walk::Continue;
}

ScheduleResult
Searcher::run()
{
    ScheduleResult result;
    result.stats.resMii = resMii(graph_.loop(), machine_);
    result.stats.recMii = graph_.recMii();
    result.stats.mii =
        std::max(result.stats.resMii, result.stats.recMii);
    result.stats.iiLowerBound = result.stats.mii;
    if (graph_.size() == 0) {
        result.error = "empty loop";
        return result;
    }

    // Same placement order as the heuristic (computed once at MII):
    // the search tree then contains every heuristic run as one path.
    computeOrdering(graph_, result.stats.mii, order_, ctx_.ordering);

    // Up to this many II attempts may burn their whole node budget
    // without settling before the search gives up; each unsettled
    // attempt costs at most nodeBudget nodes, so the total work is
    // bounded even on pathological loops.
    constexpr int MAX_ABORTED_ATTEMPTS = 4;
    int aborted_attempts = 0;

    for (Cycle ii = result.stats.mii; ii <= options_.maxII; ++ii) {
        ++result.stats.iiAttempts;
        ii_ = ii;
        mrt_.reset(ii);
        sched_.reset(ii, graph_.size(), machine_.nClusters);
        std::fill(placed_.begin(), placed_.end(), 0);
        std::fill(comm_start_.begin(), comm_start_.end(), CYCLE_MAX);
        std::fill(cluster_pop_.begin(), cluster_pop_.end(), 0);
        opened_ = 0;
        booked_.clear();
        for (int f = 0; f < ir::NUM_FU_TYPES; ++f)
            used_[f] = 0;
        attempt_limit_ = nodes_ + options_.nodeBudget;

        const Walk w = dfs(0);
        if (found_) {
            // The first feasible II is minimal over the search space;
            // it carries the certificate when it meets the lower
            // bound — MII itself, or MII raised by exhaustive
            // refutation of every II below. An aborted attempt on the
            // way here left the lower bound behind, so the schedule
            // is then reported as best-in-budget, not proven.
            result.ok = true;
            result.stats.provenOptimal =
                ii == result.stats.iiLowerBound;
            result.stats.pressureOptimal =
                options_.tiebreakPressure && w != Walk::Abort;
            break;
        }
        if (w == Walk::Abort) {
            // Budget gone with nothing found at this II: the II is
            // neither feasible-in-space nor refuted. Move on (a larger
            // II is usually much easier) until the abort allowance is
            // spent; the lower bound must not rise past this II.
            if (++aborted_attempts >= MAX_ABORTED_ATTEMPTS)
                break;
            continue;
        }
        // DFS ran dry within budget: II == ii is refuted; the lower
        // bound rises only while refutations are gapless from MII.
        if (result.stats.iiLowerBound == ii)
            result.stats.iiLowerBound = ii + 1;
        mvp_verbose("exact: loop '", graph_.loop().name(), "' II=", ii,
                    " refuted (", nodes_, " nodes)");
    }

    result.stats.searchNodes = nodes_;
    result.stats.budgetExhausted = budget_hit_;
    if (!result.ok) {
        result.error =
            budget_hit_
                ? "exact search budget exhausted before any schedule "
                  "was found for loop '" +
                      graph_.loop().name() + "'"
                : "no feasible II up to " +
                      std::to_string(options_.maxII) + " for loop '" +
                      graph_.loop().name() + "'";
        return result;
    }

    // Normalise the winner (placement may have gone below cycle zero;
    // modulo schedules are shift-invariant) and attach MaxLive.
    Cycle min_time = 0;
    for (const auto &p : best_.placements())
        min_time = std::min(min_time, p.time);
    if (min_time < 0) {
        const Cycle shift =
            ((-min_time + best_.ii() - 1) / best_.ii()) * best_.ii();
        for (std::size_t v = 0; v < graph_.size(); ++v)
            best_.placed(static_cast<OpId>(v)).time += shift;
        for (auto &cm : best_.comms())
            cm.xferStart += shift;
    }
    best_.setMaxLive(best_max_live_);
    result.schedule = std::move(best_);
    result.stats.comms = static_cast<int>(result.schedule.numComms());
    return result;
}

} // namespace

ScheduleResult
scheduleExact(const ddg::Ddg &graph, const MachineConfig &machine,
              const BnbOptions &options, SchedContext &ctx)
{
    return Searcher(graph, machine, options, ctx).run();
}

ScheduleResult
scheduleExact(const ddg::Ddg &graph, const MachineConfig &machine,
              const BnbOptions &options)
{
    SchedContext ctx;
    return scheduleExact(graph, machine, options, ctx);
}

} // namespace mvp::sched::exact
