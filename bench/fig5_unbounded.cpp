/**
 * @file
 * Reproduction of Figure 5: an unbounded number of register and memory
 * buses, sweeping the bus latencies.
 *
 * Axes, exactly as in the paper:
 *  - configurations: Unified, 2-cluster, 4-cluster (Table 1)
 *  - register-bus latency LRB in {1, 2, 4} (clustered only)
 *  - memory-bus latency LMB in {1, 2, 4}
 *  - scheduler: Baseline vs RMCA
 *  - cache-miss threshold in {1.00, 0.75, 0.25, 0.00}
 *
 * Each paper bar = one row here: NCYCLE_compute and NCYCLE_stall summed
 * over the eight benchmark suites, normalised to the Unified machine at
 * threshold 1.00. The paper's claims to check:
 *  - RMCA <= Baseline everywhere;
 *  - lower thresholds raise compute and cut stall; at 0.00 stall ~ 0;
 *  - at threshold 0.00 clustered totals approach the unified ones.
 */

#include <cstdio>

#include "common/strutil.hh"
#include "common/table.hh"
#include "harness/experiment.hh"
#include "machine/presets.hh"

using namespace mvp;
using harness::RunConfig;
using harness::SchedKind;

namespace
{

const double THRESHOLDS[] = {1.00, 0.75, 0.25, 0.00};

} // namespace

int
main()
{
    harness::Workbench bench;

    // Normaliser: unified machine, threshold 1.00.
    RunConfig base_cfg;
    base_cfg.machine = withUnboundedBuses(makeUnified(), 1, 1);
    base_cfg.sched = SchedKind::Rmca;
    base_cfg.threshold = 1.0;
    const auto base = runSuite(bench, base_cfg);
    const double norm = static_cast<double>(base.total());

    TextTable table({"config", "LRB", "LMB", "sched", "thr", "compute",
                     "stall", "total", "norm"});
    table.setTitle(
        "Figure 5: unbounded buses, cycles normalised to unified@1.00");

    auto emit = [&](const MachineConfig &machine, Cycle lrb, Cycle lmb,
                    SchedKind sched, double thr) {
        RunConfig cfg;
        cfg.machine = machine;
        cfg.sched = sched;
        cfg.threshold = thr;
        const auto res = runSuite(bench, cfg);
        table.addRow({machine.isClustered()
                          ? std::to_string(machine.nClusters) + "-cluster"
                          : "unified",
                      machine.isClustered() ? std::to_string(lrb) : "-",
                      std::to_string(lmb),
                      std::string(schedKindName(sched)),
                      fmtDouble(thr, 2),
                      std::to_string(res.compute),
                      std::to_string(res.stall),
                      std::to_string(res.total()),
                      fmtDouble(static_cast<double>(res.total()) / norm,
                                3)});
    };

    // Unified: the four threshold bars (scheduler identical for one
    // cluster; bus latencies are irrelevant to register traffic).
    for (double thr : THRESHOLDS)
        emit(withUnboundedBuses(makeUnified(), 1, 1), 1, 1,
             SchedKind::Rmca, thr);
    table.addRule();

    for (int clusters : {2, 4}) {
        for (Cycle lrb : {1, 2, 4}) {
            for (Cycle lmb : {1, 2, 4}) {
                const auto machine = withUnboundedBuses(
                    makeConfig(clusters), lrb, lmb);
                for (SchedKind sched :
                     {SchedKind::Baseline, SchedKind::Rmca})
                    for (double thr : THRESHOLDS)
                        emit(machine, lrb, lmb, sched, thr);
                table.addRule();
            }
        }
    }
    std::printf("%s\n", table.render().c_str());

    // Paper-claim summary at the reference point LRB=1, LMB=1.
    std::printf("checks (LRB=1, LMB=1):\n");
    for (int clusters : {2, 4}) {
        const auto machine =
            withUnboundedBuses(makeConfig(clusters), 1, 1);
        RunConfig b{machine, SchedKind::Baseline, 0.0};
        RunConfig r{machine, SchedKind::Rmca, 0.0};
        RunConfig r1{machine, SchedKind::Rmca, 1.0};
        const auto rb = runSuite(bench, b);
        const auto rr = runSuite(bench, r);
        const auto rr1 = runSuite(bench, r1);
        std::printf("  %d-cluster thr=0.00: RMCA/Baseline = %.3f "
                    "(<= 1 expected), stall share = %.1f%% "
                    "(~0 expected), thr 1.00 -> 0.00 stall %.0f%% -> "
                    "%.0f%%\n",
                    clusters,
                    static_cast<double>(rr.total()) /
                        static_cast<double>(rb.total()),
                    100.0 * static_cast<double>(rr.stall) /
                        static_cast<double>(rr.total()),
                    100.0 * static_cast<double>(rr1.stall) /
                        static_cast<double>(rr1.total()),
                    100.0 * static_cast<double>(rr.stall) /
                        static_cast<double>(rr.total()));
    }
    return 0;
}
