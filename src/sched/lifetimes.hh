/**
 * @file
 * Register lifetime analysis of a modulo schedule: MaxLive per cluster.
 *
 * A value written by an operation occupies a register in its cluster
 * from the cycle it is produced until its last local read (which may be
 * several stages later, II cycles apart per stage). Values transported
 * over a register bus additionally occupy a register in every
 * destination cluster from the IRV arrival until the last remote read.
 * The scheduler rejects an II attempt when any cluster's MaxLive exceeds
 * its register file (the paper: "there are not enough registers" =>
 * increase II).
 */

#ifndef MVP_SCHED_LIFETIMES_HH
#define MVP_SCHED_LIFETIMES_HH

#include <vector>

#include "ddg/ddg.hh"
#include "machine/machine.hh"
#include "sched/context.hh"
#include "sched/schedule.hh"

namespace mvp::sched
{

/** Lifetime analysis result. */
struct LifetimeStats
{
    /** Maximum simultaneously-live values, per cluster. */
    std::vector<int> maxLivePerCluster;

    /** Sum of all lifetime lengths (cycles), for reporting. */
    Cycle totalLifetime = 0;
};

/** Compute MaxLive for a complete schedule (transient scratch). */
LifetimeStats computeLifetimes(const ddg::Ddg &graph,
                               const ModuloSchedule &sched,
                               const MachineConfig &machine);

/**
 * computeLifetimes with caller-owned scratch: the schedulers call this
 * once per II attempt (heuristic) or once per search leaf (exact), so
 * the working buffers come from the SchedContext.
 */
LifetimeStats computeLifetimes(const ddg::Ddg &graph,
                               const ModuloSchedule &sched,
                               const MachineConfig &machine,
                               LifetimeScratch &scratch);

} // namespace mvp::sched

#endif // MVP_SCHED_LIFETIMES_HH
