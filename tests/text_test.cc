/**
 * @file
 * Tests for the text frontend: round-trip stability over every builtin
 * workload and machine preset, grammar acceptance (comments, free-form
 * whitespace, hex numbers, recurrence operands), file IO, the `file:`
 * workload scheme, and the parser's diagnostics.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "machine/presets.hh"
#include "text/format.hh"
#include "workloads/workloads.hh"

namespace mvp::text
{
namespace
{

/** A scratch file removed at scope exit. */
class TempFile
{
  public:
    explicit TempFile(const std::string &stem)
        : path_(::testing::TempDir() + stem)
    {
    }
    ~TempFile() { std::remove(path_.c_str()); }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

// ------------------------------------------------- round-trip property

TEST(TextRoundTrip, EveryBuiltinLoopReprintsIdentically)
{
    // parse(print(N)) must reprint byte-identically and preserve the
    // structural facts downstream layers read.
    for (const auto &bench : workloads::allBenchmarks()) {
        for (const auto &nest : bench.loops) {
            const std::string printed = printLoop(nest);
            const ir::LoopNest parsed = parseLoop(printed, nest.name());
            EXPECT_EQ(printLoop(parsed), printed) << nest.name();
            EXPECT_EQ(parsed.name(), nest.name());
            EXPECT_EQ(parsed.size(), nest.size()) << nest.name();
            EXPECT_EQ(parsed.depth(), nest.depth()) << nest.name();
            EXPECT_EQ(parsed.innerTripCount(), nest.innerTripCount());
            EXPECT_EQ(parsed.outerExecutions(), nest.outerExecutions());
            EXPECT_EQ(parsed.memoryOps(), nest.memoryOps());
            for (std::size_t a = 0; a < nest.arrays().size(); ++a) {
                const auto &want = nest.arrays()[a];
                const auto &got =
                    parsed.array(static_cast<ArrayId>(a));
                EXPECT_EQ(got.name, want.name);
                EXPECT_EQ(got.dims, want.dims);
                EXPECT_EQ(got.base, want.base);
                EXPECT_EQ(got.elemSize, want.elemSize);
            }
            for (std::size_t o = 0; o < nest.size(); ++o) {
                const auto &want = nest.ops()[o];
                const auto &got = parsed.op(static_cast<OpId>(o));
                EXPECT_EQ(got.opcode, want.opcode);
                EXPECT_EQ(got.name, want.name);
                ASSERT_EQ(got.inputs.size(), want.inputs.size());
                for (std::size_t k = 0; k < want.inputs.size(); ++k) {
                    EXPECT_EQ(got.inputs[k].producer,
                              want.inputs[k].producer);
                    EXPECT_EQ(got.inputs[k].distance,
                              want.inputs[k].distance);
                }
                EXPECT_EQ(got.memRef.has_value(),
                          want.memRef.has_value());
                if (want.memRef)
                    EXPECT_TRUE(*got.memRef == *want.memRef);
            }
        }
    }
}

TEST(TextRoundTrip, EveryMachinePresetReprintsIdentically)
{
    for (const MachineConfig &cfg :
         {makeUnified(), makeTwoCluster(), makeFourCluster()}) {
        const std::string printed = printMachine(cfg);
        const MachineConfig parsed = parseMachine(printed, cfg.name);
        EXPECT_EQ(printMachine(parsed), printed) << cfg.name;
        // summary() folds every field the experiments read.
        EXPECT_EQ(parsed.summary(), cfg.summary());
        EXPECT_EQ(parsed.missLatency(), cfg.missLatency());
        EXPECT_EQ(parsed.clusterCacheGeom(), cfg.clusterCacheGeom());
    }
}

TEST(TextRoundTrip, WholeFileWithSuiteDirective)
{
    LoopFile file;
    file.suite = "tomcatv";
    file.loops = workloads::benchmarkByName("tomcatv").loops;
    const std::string printed = printLoopFile(file);
    const LoopFile parsed = parseLoops(printed, "tomcatv");
    EXPECT_EQ(parsed.suite, "tomcatv");
    ASSERT_EQ(parsed.loops.size(), file.loops.size());
    EXPECT_EQ(printLoopFile(parsed), printed);
}

// ---------------------------------------------------------- grammar

TEST(TextParse, AcceptsCommentsFreeFormWhitespaceAndHex)
{
    const ir::LoopNest nest = parseLoop(R"(
      # a comment
      loop "grammar.demo" {
        for i = 0 to 16   # trailing comment
        for j = -2 to 30 step 2
        array A[16][70] elem=8 base=0x2000
        %0 = load A[i, 2*j + 5] %1 = fadd %0 %0@2
        %2 = fmadd "acc" %1 _ %2@1
        %3 = store %2 -> A[i, j + 4]
      }
    )");
    EXPECT_EQ(nest.size(), 4u);
    EXPECT_EQ(nest.loops()[1].lower, -2);
    EXPECT_EQ(nest.loops()[1].step, 2);
    EXPECT_EQ(nest.array(0).base, 0x2000u);
    EXPECT_EQ(nest.array(0).elemSize, 8);
    // %1 reads %0 at distances 0 and 2; %2 is a self-recurrence.
    EXPECT_EQ(nest.op(1).inputs[1].distance, 2);
    EXPECT_EQ(nest.op(2).inputs[2].producer, 2);
    EXPECT_EQ(nest.op(2).inputs[2].distance, 1);
    EXPECT_TRUE(nest.op(2).inputs[1].isLiveIn());
}

TEST(TextParse, MachineDefaultsApplyForOmittedKeys)
{
    const MachineConfig cfg = parseMachine(
        "machine \"tiny\" { clusters 2 regs 16 cache_bytes 4096 }");
    EXPECT_EQ(cfg.nClusters, 2);
    EXPECT_EQ(cfg.regsPerCluster, 16);
    EXPECT_EQ(cfg.totalCacheBytes, 4096);
    // Everything else keeps the MachineConfig default.
    EXPECT_EQ(cfg.intFusPerCluster, MachineConfig{}.intFusPerCluster);
    EXPECT_EQ(cfg.latMainMemory, MachineConfig{}.latMainMemory);
}

// ------------------------------------------------------- diagnostics

TEST(TextParseDeath, ReportsOriginAndLine)
{
    // The diagnostic carries the origin and the line of the offending
    // token (the '}' standing where 'to' should be).
    EXPECT_EXIT((void)parseLoop("loop \"x\" {\n  for i = 0\n}", "bad.loops"),
                ::testing::ExitedWithCode(1), "bad.loops:3: expected 'to'");
}

TEST(TextParseDeath, RejectsUnknownOpcode)
{
    EXPECT_EXIT((void)parseLoop(
                    "loop \"x\" { for i = 0 to 4 %0 = frob }"),
                ::testing::ExitedWithCode(1), "unknown opcode 'frob'");
}

TEST(TextParseDeath, RejectsUndeclaredArrayAndUnknownIv)
{
    EXPECT_EXIT((void)parseLoop(
                    "loop \"x\" { for i = 0 to 4 %0 = load B[i] }"),
                ::testing::ExitedWithCode(1), "undeclared array 'B'");
    EXPECT_EXIT((void)parseLoop("loop \"x\" { for i = 0 to 4 "
                                "array A[9] elem=4 base=0 "
                                "%0 = load A[q] }"),
                ::testing::ExitedWithCode(1),
                "unknown loop variable 'q'");
}

TEST(TextParseDeath, RejectsNonDenseOpIds)
{
    EXPECT_EXIT((void)parseLoop("loop \"x\" { for i = 0 to 4 "
                                "array A[9] elem=4 base=0 "
                                "%1 = load A[i] }"),
                ::testing::ExitedWithCode(1),
                "op ids must be dense");
}

TEST(TextParseDeath, RejectsInvalidNests)
{
    // Structurally well-formed text still goes through
    // LoopNest::validate(): out-of-bounds references are fatal.
    EXPECT_EXIT((void)parseLoop("loop \"x\" { for i = 0 to 40 "
                                "array A[9] elem=4 base=0 "
                                "%0 = load A[i] }"),
                ::testing::ExitedWithCode(1), "indexes");
    EXPECT_EXIT((void)parseLoop("loop \"x\" { }"),
                ::testing::ExitedWithCode(1), "has no loops");
}

TEST(TextParseDeath, RejectsUnknownMachineKey)
{
    EXPECT_EXIT((void)parseMachine("machine \"m\" { warp_drive 9 }"),
                ::testing::ExitedWithCode(1),
                "unknown machine key 'warp_drive'");
}

// ------------------------------------------------------------ file IO

TEST(TextFiles, LoopFileSaveLoadRoundTrip)
{
    TempFile file("text_test.loops");
    LoopFile out;
    out.suite = "swim";
    out.loops = workloads::benchmarkByName("swim").loops;
    saveLoopFile(out, file.path());
    const LoopFile in = loadLoopFile(file.path());
    EXPECT_EQ(in.suite, "swim");
    EXPECT_EQ(printLoopFile(in), printLoopFile(out));
}

TEST(TextFiles, MachineFileSaveLoadRoundTrip)
{
    TempFile file("text_test.machine");
    saveMachineFile(makeFourCluster(), file.path());
    EXPECT_EQ(printMachine(loadMachineFile(file.path())),
              printMachine(makeFourCluster()));
}

TEST(TextFiles, MissingFileIsFatal)
{
    EXPECT_EXIT((void)loadLoopFile("/nonexistent/nowhere.loops"),
                ::testing::ExitedWithCode(1), "cannot read");
}

// ------------------------------------------------- file: workload scheme

TEST(TextFiles, FileSchemeResolvesThroughWorkloadRegistry)
{
    TempFile file("text_test_scheme.loops");
    LoopFile out;
    out.suite = "diskbench";
    out.loops = workloads::benchmarkByName("mgrid").loops;
    saveLoopFile(out, file.path());

    const auto bench =
        workloads::benchmarkByName("file:" + file.path());
    EXPECT_EQ(bench.name, "diskbench");
    ASSERT_EQ(bench.loops.size(), out.loops.size());
    EXPECT_EQ(printLoop(bench.loops[0]), printLoop(out.loops[0]));
}

} // namespace
} // namespace mvp::text
