#include "common/logging.hh"

#include <cstdio>
#include <cstdlib>

namespace mvp
{

namespace
{
LogLevel g_level = LogLevel::Normal;

/** Nesting depth of FatalScope guards on this thread. */
thread_local int t_fatal_scope_depth = 0;
} // namespace

FatalScope::FatalScope()
{
    ++t_fatal_scope_depth;
}

FatalScope::~FatalScope()
{
    --t_fatal_scope_depth;
}

LogLevel
logLevel()
{
    return g_level;
}

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

namespace detail
{

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::fflush(stderr);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    if (t_fatal_scope_depth > 0)
        throw FatalError(msg);
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::fflush(stderr);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    if (g_level == LogLevel::Quiet)
        return;
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(LogLevel level, const std::string &msg)
{
    if (static_cast<int>(g_level) < static_cast<int>(level))
        return;
    std::fprintf(stdout, "info: %s\n", msg.c_str());
    std::fflush(stdout);
}

} // namespace detail
} // namespace mvp
