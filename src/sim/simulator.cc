#include "sim/simulator.hh"

#include <algorithm>
#include <vector>

#include "common/logging.hh"

namespace mvp::sim
{

namespace
{

/**
 * Dependences that must be checked dynamically: edges whose producer's
 * actual completion may exceed the scheduled latency (loads through
 * register flow, stores through memory flow).
 */
struct DynCheck
{
    OpId producer;
    int distance;
};

} // namespace

SimResult
simulateLoop(const ddg::Ddg &graph, const sched::ModuloSchedule &sched,
             const MachineConfig &machine, SimParams params)
{
    const auto &loop = graph.loop();
    const Cycle ii = sched.ii();
    const int sc = sched.stageCount();
    const std::int64_t n_iter = loop.innerTripCount();
    std::int64_t n_times = loop.outerExecutions();
    if (params.maxExecutions > 0)
        n_times = std::min(n_times, params.maxExecutions);
    const Cycle flat_len = (n_iter + sc - 1) * ii;

    // Issue lists per modulo slot.
    std::vector<std::vector<OpId>> by_slot(static_cast<std::size_t>(ii));
    for (const auto &op : loop.ops())
        by_slot[static_cast<std::size_t>(sched.slot(op.id))].push_back(
            op.id);

    // Dynamic checks per consumer.
    std::vector<std::vector<DynCheck>> checks(loop.size());
    for (const auto &e : graph.edges()) {
        const auto &src = loop.op(e.src);
        const bool dyn =
            (e.isRegFlow() && src.isLoad()) ||
            (e.kind == ddg::EdgeKind::MemFlow && src.isStore());
        if (dyn && e.src != e.dst)
            checks[static_cast<std::size_t>(e.dst)].push_back(
                {e.src, e.distance});
    }

    // Memory ops get completion records (one slot per iteration).
    std::vector<std::vector<Cycle>> completion(loop.size());
    for (const auto &op : loop.ops())
        if (op.isMemory())
            completion[static_cast<std::size_t>(op.id)].assign(
                static_cast<std::size_t>(n_iter), 0);

    cache::MemorySystem memsys(machine);
    SimResult res;
    res.executions = n_times;

    const ir::IterationSpace space(loop);
    std::vector<std::int64_t> ivs(loop.depth());
    const auto &inner = loop.innerLoop();

    Cycle flat_base = 0;    // accumulated compute cycles of past execs
    Cycle stall_total = 0;

    for (std::int64_t exec = 0; exec < n_times; ++exec) {
        // Outer induction variables of this execution.
        space.at(exec * n_iter, ivs);

        for (Cycle c = 0; c < flat_len; ++c) {
            const auto slot = static_cast<std::size_t>(c % ii);

            // --- Hazard check: stall all clusters until every operand
            // consumed this cycle is available. ---
            Cycle stall_here = 0;
            for (OpId v : by_slot[slot]) {
                const Cycle t_v = sched.placed(v).time;
                if (c < t_v || (c - t_v) % ii != 0)
                    continue;
                const std::int64_t k = (c - t_v) / ii;
                if (k < 0 || k >= n_iter)
                    continue;
                const Cycle dyn_issue = flat_base + c + stall_total;
                for (const auto &chk :
                     checks[static_cast<std::size_t>(v)]) {
                    const std::int64_t src_k = k - chk.distance;
                    if (src_k < 0)
                        continue;   // value from before this execution
                    const Cycle done =
                        completion[static_cast<std::size_t>(
                            chk.producer)][static_cast<std::size_t>(
                            src_k)];
                    if (done > dyn_issue + stall_here)
                        stall_here = done - dyn_issue;
                }
            }
            stall_total += stall_here;

            // --- Issue. ---
            const Cycle dyn_now = flat_base + c + stall_total;
            for (OpId v : by_slot[slot]) {
                const Cycle t_v = sched.placed(v).time;
                if (c < t_v || (c - t_v) % ii != 0)
                    continue;
                const std::int64_t k = (c - t_v) / ii;
                if (k < 0 || k >= n_iter)
                    continue;
                ++res.opsExecuted;

                const auto &op = loop.op(v);
                if (!op.isMemory())
                    continue;

                ivs[loop.innerDepth()] = inner.lower + k * inner.step;
                const Addr addr = loop.addressOf(*op.memRef, ivs);
                const auto acc = memsys.access(
                    sched.placed(v).cluster, addr, op.isStore(), dyn_now);
                ++res.memAccesses;
                if (acc.issueStall > 0)
                    stall_total += acc.issueStall;
                completion[static_cast<std::size_t>(v)]
                          [static_cast<std::size_t>(k)] = acc.completion;
            }
        }

        res.iterations += n_iter;
        flat_base += flat_len;
    }

    res.computeCycles = flat_base;
    res.stallCycles = stall_total;
    res.memStats = memsys.stats();
    return res;
}

} // namespace mvp::sim
