/**
 * @file
 * Dominance/transposition memo for the exact branch-and-bound search:
 * an open-addressing hash set of canonical partial-schedule signatures
 * (same design family as the CME RatioMemo — flat storage, linear
 * probing, geometric growth), recording subtrees the search has already
 * exhausted.
 *
 * The searcher folds everything a partial schedule's *future* can
 * depend on into a 128-bit signature (two independent 64-bit hashes):
 * the placements of still-live operations at absolute cycles, dead
 * operations reduced to their modulo slot and final lifetime
 * footprints (only while the pressure tracker maintains those
 * footprints — first-leaf-wins searches fold dead state absolutely,
 * see computeSignature), booked bus transfers, and the DFS depth. Two
 * states with equal signatures have isomorphic subtrees, so the
 * second visit is pruned. Soundness of the prune does not need a stored value: an
 * entry is inserted only when its subtree was exhausted under the
 * register-pressure incumbent of the time, and the incumbent is
 * monotone non-increasing, so a re-visit can never find a strictly
 * better leaf inside (see bnb.cc for the argument).
 *
 * The table is per-searcher scratch (reset at each II attempt — the
 * signature does not canonicalise across IIs) and never shared between
 * threads; the portfolio backend gives every shard its own searcher.
 */

#ifndef MVP_SCHED_EXACT_MEMO_HH
#define MVP_SCHED_EXACT_MEMO_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace mvp::sched::exact
{

/** Open-addressing set of 128-bit partial-schedule signatures. */
class DominanceMemo
{
  public:
    /** Forget every signature, keeping the table's capacity. */
    void reset()
    {
        if (size_ > 0)
            std::fill(keys_.begin(), keys_.end(), Key{0, 0});
        size_ = 0;
    }

    /** True when (lo, hi) was inserted since the last reset(). */
    bool contains(std::uint64_t lo, std::uint64_t hi) const
    {
        if (keys_.empty())
            return false;
        remap(lo, hi);
        const std::size_t mask = keys_.size() - 1;
        for (std::size_t i = lo & mask;; i = (i + 1) & mask) {
            const Key &k = keys_[i];
            if (k.lo == 0 && k.hi == 0)
                return false;
            if (k.lo == lo && k.hi == hi)
                return true;
        }
    }

    /**
     * Insert (lo, hi); duplicates are no-ops. When the table has grown
     * to its cap and is nearly full, further inserts are dropped — the
     * memo is an accelerator, losing entries only costs pruning.
     */
    void insert(std::uint64_t lo, std::uint64_t hi)
    {
        if (keys_.empty())
            keys_.assign(INITIAL_SLOTS, Key{0, 0});
        else if (size_ * 8 >= keys_.size() * 5) {
            if (keys_.size() < MAX_SLOTS)
                grow();
            else if (size_ * 16 >= keys_.size() * 15)
                return;   // ~94% full at cap: stop inserting
        }
        remap(lo, hi);
        const std::size_t mask = keys_.size() - 1;
        for (std::size_t i = lo & mask;; i = (i + 1) & mask) {
            Key &k = keys_[i];
            if (k.lo == lo && k.hi == hi)
                return;
            if (k.lo == 0 && k.hi == 0) {
                k = {lo, hi};
                ++size_;
                return;
            }
        }
    }

    /** Entries inserted since the last reset(). */
    std::size_t size() const { return size_; }

    /** Current slot count (0 until the first insert). */
    std::size_t capacity() const { return keys_.size(); }

  private:
    struct Key
    {
        std::uint64_t lo;
        std::uint64_t hi;
    };

    static constexpr std::size_t INITIAL_SLOTS = 1u << 12;
    static constexpr std::size_t MAX_SLOTS = 1u << 20;

    /** The all-zero key is the empty-slot sentinel; remap it. */
    static void remap(std::uint64_t &lo, std::uint64_t &hi)
    {
        if (lo == 0 && hi == 0)
            lo = 0x9e3779b97f4a7c15ull;
    }

    void grow()
    {
        std::vector<Key> old = std::move(keys_);
        keys_.assign(old.size() * 4, Key{0, 0});
        const std::size_t mask = keys_.size() - 1;
        for (const Key &k : old) {
            if (k.lo == 0 && k.hi == 0)
                continue;
            for (std::size_t i = k.lo & mask;; i = (i + 1) & mask) {
                if (keys_[i].lo == 0 && keys_[i].hi == 0) {
                    keys_[i] = k;
                    break;
                }
            }
        }
    }

    std::vector<Key> keys_;
    std::size_t size_ = 0;
};

} // namespace mvp::sched::exact

#endif // MVP_SCHED_EXACT_MEMO_HH
