/**
 * @file
 * Fundamental scalar types shared by every multiVLIW module.
 */

#ifndef MVP_COMMON_TYPES_HH
#define MVP_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace mvp
{

/** Simulated byte address in the flat benchmark address space. */
using Addr = std::uint64_t;

/** Simulated clock cycle count. */
using Cycle = std::int64_t;

/** Dense identifier of an operation inside one loop body. */
using OpId = std::int32_t;

/** Dense identifier of an array inside one loop nest. */
using ArrayId = std::int32_t;

/** Identifier of a cluster (0-based). */
using ClusterId = std::int32_t;

/** Invalid/unset marker for the dense id types above. */
constexpr std::int32_t INVALID_ID = -1;

/** A cycle value meaning "never" / "not yet". */
constexpr Cycle CYCLE_MAX = std::numeric_limits<Cycle>::max();

} // namespace mvp

#endif // MVP_COMMON_TYPES_HH
