#include "sched/sat/encode.hh"

#include <algorithm>

#include "common/logging.hh"
#include "ir/loop.hh"
#include "sched/mrt.hh"
#include "sched/sentinels.hh"

namespace mvp::sched::sat
{

namespace
{

/** Keep one attempt's encoding from ballooning past the solver's
 * comfort zone: past this many order variables we report TooLarge and
 * the backend degrades to "gap unknown" (never a wrong certificate). */
constexpr std::int64_t MAX_ORDER_VARS = 400'000;

/** Liveness coverage past this many stages is truncated — dropping
 * coverage only weakens the (already under-approximate) pressure
 * cardinality, so truncation is sound. */
constexpr Cycle MAX_COVER_STAGES = 8;

} // namespace

IiEncoding::IiEncoding(const ddg::Ddg &graph, const MachineConfig &machine,
                       const std::vector<OpId> &order, Cycle ii)
    : graph_(graph), machine_(machine), order_(order), ii_(ii),
      lrb_(machine.regBusLatency), nc_(machine.nClusters),
      n_(graph.size())
{
    mvp_assert(order_.size() == n_, "ordering does not cover the loop");
}

Lit
IiEncoding::neg(Lit l)
{
    if (l == TRUE_LIT)
        return FALSE_LIT;
    if (l == FALSE_LIT)
        return TRUE_LIT;
    return ~l;
}

Cycle
IiEncoding::modSlot(Cycle a) const
{
    Cycle m = a % ii_;
    return m < 0 ? m + ii_ : m;
}

Lit
IiEncoding::ole(OpId v, Cycle j) const
{
    const OpVars &o = ops_[static_cast<std::size_t>(v)];
    if (j >= o.hi)
        return TRUE_LIT;
    if (j < o.lo)
        return FALSE_LIT;
    return mkLit(o.o0 + static_cast<Var>(j - o.lo));
}

Lit
IiEncoding::ple(int pair, Cycle j) const
{
    const CommVars &cv = comms_[static_cast<std::size_t>(pair)];
    if (cv.xhi < cv.xlo)
        return TRUE_LIT; // transfer impossible; E is forced false
    if (j >= cv.xhi)
        return TRUE_LIT;
    if (j < cv.xlo)
        return FALSE_LIT;
    return mkLit(cv.p0 + static_cast<Var>(j - cv.xlo));
}

Lit
IiEncoding::klit(OpId v, ClusterId c) const
{
    if (nc_ == 1)
        return c == 0 ? TRUE_LIT : FALSE_LIT;
    return mkLit(ops_[static_cast<std::size_t>(v)].k0 + c);
}

Var
IiEncoding::fresh(Solver &s)
{
    ++vars_;
    return s.newVar();
}

void
IiEncoding::clause(Solver &s, std::initializer_list<Lit> ls)
{
    buf_.clear();
    buf_.push_back(~act_);
    for (Lit l : ls) {
        if (l == TRUE_LIT)
            return;
        if (l == FALSE_LIT)
            continue;
        buf_.push_back(l);
    }
    s.addClause(buf_);
    ++clauses_;
}

void
IiEncoding::clauseV(Solver &s, const std::vector<Lit> &ls)
{
    buf_.clear();
    buf_.push_back(~act_);
    for (Lit l : ls) {
        if (l == TRUE_LIT)
            return;
        if (l == FALSE_LIT)
            continue;
        buf_.push_back(l);
    }
    s.addClause(buf_);
    ++clauses_;
}

void
IiEncoding::atMostK(Solver &s, const std::vector<Lit> &xs, int k)
{
    const int n = static_cast<int>(xs.size());
    if (n <= k)
        return;
    if (k == 0) {
        for (Lit x : xs)
            clause(s, {neg(x)});
        return;
    }
    // Sinz sequential counter: s_{i,j} <=> "at least j of x_0..x_i".
    std::vector<Var> prev(static_cast<std::size_t>(k));
    std::vector<Var> cur(static_cast<std::size_t>(k));
    for (int j = 0; j < k; ++j) {
        prev[static_cast<std::size_t>(j)] = fresh(s);
        if (j == 0)
            clause(s, {neg(xs[0]),
                       mkLit(prev[static_cast<std::size_t>(j)])});
        else
            clause(s, {~mkLit(prev[static_cast<std::size_t>(j)])});
    }
    for (int i = 1; i < n - 1; ++i) {
        for (int j = 0; j < k; ++j)
            cur[static_cast<std::size_t>(j)] = fresh(s);
        clause(s, {neg(xs[static_cast<std::size_t>(i)]),
                   mkLit(cur[0])});
        clause(s, {~mkLit(prev[0]), mkLit(cur[0])});
        for (int j = 1; j < k; ++j) {
            clause(s, {neg(xs[static_cast<std::size_t>(i)]),
                       ~mkLit(prev[static_cast<std::size_t>(j - 1)]),
                       mkLit(cur[static_cast<std::size_t>(j)])});
            clause(s, {~mkLit(prev[static_cast<std::size_t>(j)]),
                       mkLit(cur[static_cast<std::size_t>(j)])});
        }
        clause(s, {neg(xs[static_cast<std::size_t>(i)]),
                   ~mkLit(prev[static_cast<std::size_t>(k - 1)])});
        std::swap(prev, cur);
    }
    clause(s, {neg(xs[static_cast<std::size_t>(n - 1)]),
               ~mkLit(prev[static_cast<std::size_t>(k - 1)])});
}

/**
 * Static time-window hull per op, mirroring the B&B's per-node window
 * rules (dfs() in bnb.cc) by interval arithmetic over placement order:
 * the first op is anchored at cycle 0, an op with earlier-order
 * predecessors gets [early_lo, early_hi + II - 1] (clipped by its
 * earlier-order consumers' budgets), an op with only earlier-order
 * successors gets [late_lo - II + 1, late_hi], an isolated op gets
 * [0, II - 1]. A dependence-slack fixpoint then tightens the hulls.
 * Empty hull = the enumerated space is empty: certified refutation.
 */
bool
IiEncoding::computeWindows()
{
    ops_.assign(n_, OpVars{});
    pos_.assign(n_, -1);
    for (std::size_t k = 0; k < n_; ++k)
        pos_[static_cast<std::size_t>(order_[k])] = static_cast<int>(k);

    // Self-edges constrain nothing the placement can change: the II
    // either absorbs the recurrence or the attempt is refuted outright.
    for (const auto &e : graph_.edges()) {
        if (e.src != e.dst)
            continue;
        const Cycle need =
            e.isRegFlow() ? graph_.opLatency(e.src) : e.latency;
        if (need > ii_ * e.distance)
            return false;
    }

    const bool multi = nc_ > 1;
    for (std::size_t k = 0; k < n_; ++k) {
        const OpId v = order_[k];
        OpVars &ov = ops_[static_cast<std::size_t>(v)];
        const int kp = static_cast<int>(k);
        bool has_pred = false, has_succ = false;
        Cycle early_lo = 0, early_hi = 0;
        Cycle late_lo = CYCLE_MAX, late_hi = CYCLE_MAX;

        for (int ei : graph_.inEdges(v)) {
            const auto &e = graph_.edges()[static_cast<std::size_t>(ei)];
            if (e.src == v || pos_[static_cast<std::size_t>(e.src)] >= kp)
                continue;
            const OpVars &ou = ops_[static_cast<std::size_t>(e.src)];
            const Cycle iidist = ii_ * e.distance;
            const Cycle out_lat = graph_.opLatency(e.src);
            const Cycle minf =
                (e.isRegFlow() ? out_lat : e.latency) - iidist;
            const Cycle maxf =
                minf + (e.isRegFlow() && multi ? lrb_ + ii_ - 1 : 0);
            if (!has_pred) {
                early_lo = ou.lo + minf;
                early_hi = ou.hi + maxf;
                has_pred = true;
            } else {
                early_lo = std::max(early_lo, ou.lo + minf);
                early_hi = std::max(early_hi, ou.hi + maxf);
            }
        }
        for (int ei : graph_.outEdges(v)) {
            const auto &e = graph_.edges()[static_cast<std::size_t>(ei)];
            if (e.dst == v || pos_[static_cast<std::size_t>(e.dst)] >= kp)
                continue;
            const OpVars &ow = ops_[static_cast<std::size_t>(e.dst)];
            const Cycle iidist = ii_ * e.distance;
            const Cycle out_lat = graph_.opLatency(v);
            const Cycle maxg =
                iidist - (e.isRegFlow() ? out_lat : e.latency);
            const Cycle ming =
                maxg - (e.isRegFlow() && multi ? lrb_ : 0);
            has_succ = true;
            late_lo = std::min(late_lo, ow.lo + ming);
            late_hi = std::min(late_hi, ow.hi + maxg);
        }

        if (has_pred) {
            ov.lo = early_lo;
            ov.hi = early_hi + ii_ - 1;
            if (has_succ)
                ov.hi = std::min(ov.hi, late_hi);
        } else if (has_succ) {
            ov.lo = late_lo - ii_ + 1;
            ov.hi = late_hi;
        } else {
            ov.lo = 0;
            ov.hi = k == 0 ? 0 : ii_ - 1;
        }
        if (ov.lo > ov.hi)
            return false;
    }

    // Dependence-slack fixpoint (bounded passes; an unfinished
    // tightening only leaves the hull wider, which is sound).
    const int max_passes = static_cast<int>(2 * n_ + 8);
    for (int pass = 0; pass < max_passes; ++pass) {
        bool changed = false;
        for (const auto &e : graph_.edges()) {
            if (e.src == e.dst)
                continue;
            OpVars &ou = ops_[static_cast<std::size_t>(e.src)];
            OpVars &ov = ops_[static_cast<std::size_t>(e.dst)];
            const Cycle d =
                (e.isRegFlow() ? graph_.opLatency(e.src) : e.latency) -
                ii_ * e.distance;
            if (ov.lo < ou.lo + d) {
                ov.lo = ou.lo + d;
                changed = true;
            }
            if (ou.hi > ov.hi - d) {
                ou.hi = ov.hi - d;
                changed = true;
            }
            if (ov.lo > ov.hi || ou.lo > ou.hi)
                return false;
        }
        if (!changed)
            break;
    }
    return true;
}

void
IiEncoding::emitTimeChains(Solver &s)
{
    for (std::size_t v = 0; v < n_; ++v) {
        OpVars &ov = ops_[v];
        const Cycle width = ov.hi - ov.lo;
        if (width == 0)
            continue;
        ov.o0 = s.newVar();
        vars_ += width;
        for (Cycle i = 1; i < width; ++i)
            s.newVar();
        for (Cycle j = ov.lo; j < ov.hi - 1; ++j)
            clause(s, {~ole(static_cast<OpId>(v), j),
                       ole(static_cast<OpId>(v), j + 1)});
    }
}

void
IiEncoding::emitClusterConstraints(Solver &s)
{
    if (nc_ == 1)
        return;
    for (std::size_t v = 0; v < n_; ++v) {
        OpVars &ov = ops_[v];
        ov.k0 = s.newVar();
        vars_ += nc_;
        for (int c = 1; c < nc_; ++c)
            s.newVar();
        std::vector<Lit> alo;
        for (ClusterId c = 0; c < nc_; ++c)
            alo.push_back(klit(static_cast<OpId>(v), c));
        clauseV(s, alo);
        for (ClusterId c = 0; c < nc_; ++c)
            for (ClusterId c2 = c + 1; c2 < nc_; ++c2)
                clause(s, {~klit(static_cast<OpId>(v), c),
                           ~klit(static_cast<OpId>(v), c2)});
    }
    // Prefix-population symmetry break, exactly the B&B's c_limit =
    // opened + 1 rule: order_[k] may sit in cluster c >= 1 only when
    // some earlier-order op sits in cluster c - 1.
    for (std::size_t k = 0; k < n_; ++k) {
        const OpId v = order_[k];
        for (ClusterId c = 1; c < nc_; ++c) {
            std::vector<Lit> cl;
            cl.push_back(~klit(v, c));
            for (std::size_t k2 = 0; k2 < k; ++k2)
                cl.push_back(klit(order_[k2], c - 1));
            clauseV(s, cl);
        }
    }
}

void
IiEncoding::emitCommStructure(Solver &s)
{
    pair_of_.assign(n_ * static_cast<std::size_t>(nc_), -1);
    if (nc_ == 1)
        return;
    const bool bus_impossible = !machine_.unboundedRegBuses && lrb_ > ii_;
    for (std::size_t u = 0; u < n_; ++u) {
        const OpVars &ou = ops_[u];
        const Cycle out_lat = graph_.opLatency(static_cast<OpId>(u));
        Cycle budget_hi = CYCLE_MAX;
        bool has_consumer = false;
        for (int ei : graph_.outEdges(static_cast<OpId>(u))) {
            const auto &e = graph_.edges()[static_cast<std::size_t>(ei)];
            if (!e.isRegFlow() || e.dst == static_cast<OpId>(u))
                continue;
            const OpVars &ow = ops_[static_cast<std::size_t>(e.dst)];
            const Cycle b = ow.hi + ii_ * e.distance;
            budget_hi = has_consumer ? std::max(budget_hi, b) : b;
            has_consumer = true;
        }
        if (!has_consumer)
            continue;
        for (ClusterId d = 0; d < nc_; ++d) {
            CommVars cv;
            cv.u = static_cast<OpId>(u);
            cv.d = d;
            cv.xlo = ou.lo + out_lat;
            cv.xhi = std::min(ou.hi + out_lat + ii_ - 1,
                              budget_hi - lrb_);
            if (bus_impossible)
                cv.xhi = cv.xlo - 1;
            const int p = static_cast<int>(comms_.size());
            cv.e = fresh(s);
            if (cv.xhi > cv.xlo) {
                cv.p0 = s.newVar();
                vars_ += cv.xhi - cv.xlo;
                for (Cycle i = 1; i < cv.xhi - cv.xlo; ++i)
                    s.newVar();
            }
            comms_.push_back(cv);
            pair_of_[u * static_cast<std::size_t>(nc_) +
                     static_cast<std::size_t>(d)] = p;
            if (cv.xhi < cv.xlo) {
                clause(s, {~mkLit(cv.e)});
                continue;
            }
            // Start-order chain, producer-ready lower bound, width-II
            // booking window (bookTransfers: x in [ready, ready+II-1]),
            // and never a transfer into the producer's own cluster.
            for (Cycle j = cv.xlo; j < cv.xhi - 1; ++j)
                clause(s, {~ple(p, j), ple(p, j + 1)});
            for (Cycle j = cv.xlo; j <= cv.xhi; ++j)
                clause(s, {~mkLit(cv.e), neg(ple(p, j)),
                           ole(static_cast<OpId>(u), j - out_lat)});
            for (Cycle j = ou.lo; j <= ou.hi; ++j)
                clause(s, {~mkLit(cv.e),
                           neg(ole(static_cast<OpId>(u), j)),
                           ple(p, j + out_lat + ii_ - 1)});
            clause(s, {~mkLit(cv.e), ~klit(static_cast<OpId>(u), d)});
        }
    }
}

void
IiEncoding::emitDependences(Solver &s)
{
    for (const auto &e : graph_.edges()) {
        if (e.src == e.dst)
            continue; // handled statically in computeWindows()
        const OpId u = e.src, v = e.dst;
        const OpVars &ov = ops_[static_cast<std::size_t>(v)];
        const Cycle iidist = ii_ * e.distance;
        if (!e.isRegFlow()) {
            const Cycle d = iidist - e.latency;
            for (Cycle j = ov.lo; j <= ov.hi; ++j)
                clause(s, {neg(ole(v, j)), ole(u, j + d)});
            continue;
        }
        const Cycle out_lat = graph_.opLatency(u);
        // Same cluster: consumer at t_v reads the local register file.
        for (ClusterId c = 0; c < nc_; ++c)
            for (Cycle j = ov.lo; j <= ov.hi; ++j)
                clause(s, {neg(klit(u, c)), neg(klit(v, c)),
                           neg(ole(v, j)), ole(u, j + iidist - out_lat)});
        // Cross cluster: the shared (u, d) transfer must exist and its
        // value must arrive by the consumer's budget.
        if (nc_ == 1)
            continue;
        for (ClusterId d = 0; d < nc_; ++d) {
            const int p = pair_of_[static_cast<std::size_t>(u) *
                                       static_cast<std::size_t>(nc_) +
                                   static_cast<std::size_t>(d)];
            mvp_assert(p >= 0, "register consumer without a comm pair");
            clause(s, {neg(klit(v, d)), klit(u, d),
                       mkLit(comms_[static_cast<std::size_t>(p)].e)});
            for (Cycle j = ov.lo; j <= ov.hi; ++j)
                clause(s, {neg(klit(v, d)), klit(u, d), neg(ole(v, j)),
                           ple(p, j + iidist - lrb_)});
        }
    }
}

/**
 * The B&B's width-II window caps, as per-edge disjunctions: an op with
 * earlier-order predecessors satisfies t_v <= f_e + II - 1 for SOME
 * in-edge e (f_e = that edge's contribution to `early`), an op with
 * only earlier-order successors satisfies t_v >= g_e - II + 1 for some
 * out-edge e. With one eligible edge the implication is emitted
 * directly; otherwise an auxiliary selector per edge carries the
 * disjunction.
 */
void
IiEncoding::emitWindowCaps(Solver &s)
{
    std::vector<int> ins, outs;
    for (std::size_t k = 0; k < n_; ++k) {
        const OpId v = order_[k];
        const OpVars &ov = ops_[static_cast<std::size_t>(v)];
        const int kp = static_cast<int>(k);
        ins.clear();
        outs.clear();
        for (int ei : graph_.inEdges(v)) {
            const auto &e = graph_.edges()[static_cast<std::size_t>(ei)];
            if (e.src != v && pos_[static_cast<std::size_t>(e.src)] < kp)
                ins.push_back(ei);
        }
        for (int ei : graph_.outEdges(v)) {
            const auto &e = graph_.edges()[static_cast<std::size_t>(ei)];
            if (e.dst != v && pos_[static_cast<std::size_t>(e.dst)] < kp)
                outs.push_back(ei);
        }

        if (!ins.empty()) {
            // Ascending window: t_v <= early + II - 1.
            std::vector<Lit> sel;
            const bool multiple = ins.size() > 1;
            if (multiple) {
                for (std::size_t i = 0; i < ins.size(); ++i)
                    sel.push_back(mkLit(fresh(s)));
                clauseV(s, sel);
            }
            for (std::size_t i = 0; i < ins.size(); ++i) {
                const auto &e =
                    graph_.edges()[static_cast<std::size_t>(ins[i])];
                const Lit g = multiple ? ~sel[i] : FALSE_LIT;
                const OpId u = e.src;
                const OpVars &ou = ops_[static_cast<std::size_t>(u)];
                const Cycle iidist = ii_ * e.distance;
                if (!e.isRegFlow()) {
                    const Cycle b = e.latency - iidist + ii_ - 1;
                    for (Cycle j = ou.lo; j <= ou.hi; ++j)
                        clause(s, {g, neg(ole(u, j)), ole(v, j + b)});
                    continue;
                }
                const Cycle out_lat = graph_.opLatency(u);
                const Cycle b = out_lat - iidist + ii_ - 1;
                for (ClusterId c = 0; c < nc_; ++c)
                    for (Cycle j = ou.lo; j <= ou.hi; ++j)
                        clause(s, {g, neg(klit(u, c)), neg(klit(v, c)),
                                   neg(ole(u, j)), ole(v, j + b)});
                if (nc_ == 1)
                    continue;
                const Cycle b2 = lrb_ - iidist + ii_ - 1;
                for (ClusterId d = 0; d < nc_; ++d) {
                    const int p =
                        pair_of_[static_cast<std::size_t>(u) *
                                     static_cast<std::size_t>(nc_) +
                                 static_cast<std::size_t>(d)];
                    const CommVars &cv =
                        comms_[static_cast<std::size_t>(p)];
                    for (Cycle j = cv.xlo; j <= cv.xhi; ++j)
                        clause(s, {g, neg(klit(v, d)), klit(u, d),
                                   neg(ple(p, j)), ole(v, j + b2)});
                }
            }
        } else if (!outs.empty()) {
            // Descending window: t_v >= late - II + 1.
            std::vector<Lit> sel;
            const bool multiple = outs.size() > 1;
            if (multiple) {
                for (std::size_t i = 0; i < outs.size(); ++i)
                    sel.push_back(mkLit(fresh(s)));
                clauseV(s, sel);
            }
            const Cycle out_lat = graph_.opLatency(v);
            for (std::size_t i = 0; i < outs.size(); ++i) {
                const auto &e =
                    graph_.edges()[static_cast<std::size_t>(outs[i])];
                const Lit g = multiple ? ~sel[i] : FALSE_LIT;
                const OpId w = e.dst;
                const Cycle iidist = ii_ * e.distance;
                if (!e.isRegFlow()) {
                    const Cycle c0 = iidist - e.latency - ii_ + 1;
                    for (Cycle j = ov.lo; j <= ov.hi; ++j)
                        clause(s, {g, neg(ole(v, j)), ole(w, j - c0)});
                    continue;
                }
                const Cycle c1 = iidist - out_lat - ii_ + 1;
                for (ClusterId c = 0; c < nc_; ++c)
                    for (Cycle j = ov.lo; j <= ov.hi; ++j)
                        clause(s, {g, neg(klit(v, c)), neg(klit(w, c)),
                                   neg(ole(v, j)), ole(w, j - c1)});
                if (nc_ == 1)
                    continue;
                const Cycle c2 = iidist - lrb_ - out_lat - ii_ + 1;
                for (ClusterId d = 0; d < nc_; ++d)
                    for (Cycle j = ov.lo; j <= ov.hi; ++j)
                        clause(s, {g, neg(klit(w, d)), klit(v, d),
                                   neg(ole(v, j)), ole(w, j - c2)});
            }
        }
    }
}

void
IiEncoding::emitFuCapacity(Solver &s)
{
    const auto &loop = graph_.loop();
    for (int f = 0; f < ir::NUM_FU_TYPES; ++f) {
        const auto type = static_cast<ir::FuType>(f);
        const int cap = machine_.fusPerCluster(type);
        std::vector<OpId> members;
        for (std::size_t v = 0; v < n_; ++v)
            if (loop.op(static_cast<OpId>(v)).fuType() == type)
                members.push_back(static_cast<OpId>(v));
        if (static_cast<int>(members.size()) <= cap)
            continue;
        for (OpId v : members) {
            OpVars &ov = ops_[static_cast<std::size_t>(v)];
            if (ov.s0 < 0) {
                ov.s0 = s.newVar();
                vars_ += ii_;
                for (Cycle i = 1; i < ii_; ++i)
                    s.newVar();
                for (Cycle t = ov.lo; t <= ov.hi; ++t)
                    clause(s, {neg(ole(v, t)), ole(v, t - 1),
                               mkLit(ov.s0 +
                                     static_cast<Var>(modSlot(t)))});
            }
            if (nc_ > 1 && ov.b0 < 0) {
                ov.b0 = s.newVar();
                vars_ += static_cast<Cycle>(nc_) * ii_;
                for (Cycle i = 1; i < static_cast<Cycle>(nc_) * ii_; ++i)
                    s.newVar();
                for (ClusterId c = 0; c < nc_; ++c)
                    for (Cycle sl = 0; sl < ii_; ++sl)
                        clause(s,
                               {neg(klit(v, c)),
                                ~mkLit(ov.s0 + static_cast<Var>(sl)),
                                mkLit(ov.b0 +
                                      static_cast<Var>(c * ii_ + sl))});
            }
        }
        std::vector<Lit> xs;
        for (ClusterId c = 0; c < nc_; ++c)
            for (Cycle sl = 0; sl < ii_; ++sl) {
                xs.clear();
                for (OpId v : members) {
                    const OpVars &ov = ops_[static_cast<std::size_t>(v)];
                    xs.push_back(
                        nc_ == 1
                            ? mkLit(ov.s0 + static_cast<Var>(sl))
                            : mkLit(ov.b0 +
                                    static_cast<Var>(c * ii_ + sl)));
                }
                atMostK(s, xs, cap);
            }
    }
}

void
IiEncoding::emitBusCapacity(Solver &s)
{
    if (nc_ == 1 || machine_.unboundedRegBuses || lrb_ > ii_)
        return;
    int live_pairs = 0;
    for (const CommVars &cv : comms_)
        if (cv.xhi >= cv.xlo)
            ++live_pairs;
    if (live_pairs <= machine_.nRegBuses)
        return;
    for (CommVars &cv : comms_) {
        if (cv.xhi < cv.xlo)
            continue;
        cv.u0 = s.newVar();
        vars_ += ii_;
        for (Cycle i = 1; i < ii_; ++i)
            s.newVar();
        const int p = static_cast<int>(&cv - comms_.data());
        for (Cycle j = cv.xlo; j <= cv.xhi; ++j)
            for (Cycle kk = 0; kk < lrb_; ++kk)
                clause(s, {~mkLit(cv.e), neg(ple(p, j)), ple(p, j - 1),
                           mkLit(cv.u0 +
                                 static_cast<Var>(modSlot(j + kk)))});
    }
    std::vector<Lit> xs;
    for (Cycle sl = 0; sl < ii_; ++sl) {
        xs.clear();
        for (const CommVars &cv : comms_)
            if (cv.u0 >= 0)
                xs.push_back(mkLit(cv.u0 + static_cast<Var>(sl)));
        atMostK(s, xs, machine_.nRegBuses);
    }
}

/**
 * Per-cluster register-pressure cardinality: liveness indicators per
 * (value, cluster, modulo slot) forced true wherever a value provably
 * occupies a register — from production to the latest same-cluster
 * read or pending transfer start locally, from arrival to the latest
 * remote read in a transfer's destination — then at-most-R per
 * (cluster, slot). Multiplicity across overlapped stages is dropped,
 * so the bound under-approximates lifetimes.cc; the decode/validate/
 * block loop in the backend covers the gap.
 */
void
IiEncoding::emitRegisterPressure(Solver &s)
{
    const int regs = machine_.regsPerCluster;
    const auto &loop = graph_.loop();
    std::vector<OpId> values;
    for (std::size_t v = 0; v < n_; ++v)
        if (loop.op(static_cast<OpId>(v)).producesValue())
            values.push_back(static_cast<OpId>(v));
    int pairs_per_cluster = 0;
    for (const CommVars &cv : comms_)
        if (cv.d == 0 && cv.xhi >= cv.xlo)
            ++pairs_per_cluster;
    if (static_cast<int>(values.size()) + pairs_per_cluster <= regs)
        return;

    const Cycle cover_cap = MAX_COVER_STAGES * ii_;
    for (OpId u : values) {
        OpVars &ou = ops_[static_cast<std::size_t>(u)];
        const Cycle out_lat = graph_.opLatency(u);
        ou.l0 = s.newVar();
        vars_ += static_cast<Cycle>(nc_) * ii_;
        for (Cycle i = 1; i < static_cast<Cycle>(nc_) * ii_; ++i)
            s.newVar();
        const Cycle a_lo = ou.lo + out_lat;
        for (ClusterId c = 0; c < nc_; ++c) {
            const Var lc = ou.l0 + static_cast<Var>(c * ii_);
            // Production slot (the degenerate [start, start] interval).
            for (Cycle t = ou.lo; t <= ou.hi; ++t)
                clause(s, {neg(klit(u, c)), neg(ole(u, t)), ole(u, t - 1),
                           mkLit(lc + static_cast<Var>(
                                          modSlot(t + out_lat)))});
            // Live until each same-cluster read.
            for (int ei : graph_.outEdges(u)) {
                const auto &e =
                    graph_.edges()[static_cast<std::size_t>(ei)];
                if (!e.isRegFlow())
                    continue;
                const OpId w = e.dst;
                const OpVars &ow = ops_[static_cast<std::size_t>(w)];
                const Cycle iidist = ii_ * e.distance;
                const Cycle a_hi = std::min(ow.hi + iidist,
                                            a_lo + cover_cap - 1);
                for (Cycle a = a_lo; a <= a_hi; ++a)
                    clause(s, {neg(klit(u, c)), neg(klit(w, c)),
                               neg(ole(u, a - out_lat)),
                               ole(w, a - iidist - 1),
                               mkLit(lc + static_cast<Var>(modSlot(a)))});
            }
            // Live until each pending transfer's bus slot.
            if (nc_ > 1)
                for (ClusterId d = 0; d < nc_; ++d) {
                    const int p =
                        pair_of_[static_cast<std::size_t>(u) *
                                     static_cast<std::size_t>(nc_) +
                                 static_cast<std::size_t>(d)];
                    if (p < 0)
                        continue;
                    const CommVars &cv =
                        comms_[static_cast<std::size_t>(p)];
                    if (cv.xhi < cv.xlo)
                        continue;
                    const Cycle a_hi =
                        std::min(cv.xhi, a_lo + cover_cap - 1);
                    for (Cycle a = a_lo; a <= a_hi; ++a)
                        clause(s,
                               {neg(klit(u, c)), ~mkLit(cv.e),
                                neg(ole(u, a - out_lat)), ple(p, a - 1),
                                mkLit(lc +
                                      static_cast<Var>(modSlot(a)))});
                }
        }
    }
    // Remote intervals: arrival .. last remote read.
    for (CommVars &cv : comms_) {
        if (cv.xhi < cv.xlo)
            continue;
        cv.r0 = s.newVar();
        vars_ += ii_;
        for (Cycle i = 1; i < ii_; ++i)
            s.newVar();
        const int p = static_cast<int>(&cv - comms_.data());
        for (Cycle j = cv.xlo; j <= cv.xhi; ++j)
            clause(s, {~mkLit(cv.e), neg(ple(p, j)), ple(p, j - 1),
                       mkLit(cv.r0 +
                             static_cast<Var>(modSlot(j + lrb_)))});
        const Cycle a_lo = cv.xlo + lrb_;
        for (int ei : graph_.outEdges(cv.u)) {
            const auto &e = graph_.edges()[static_cast<std::size_t>(ei)];
            if (!e.isRegFlow() || e.dst == cv.u)
                continue;
            const OpId w = e.dst;
            const OpVars &ow = ops_[static_cast<std::size_t>(w)];
            const Cycle iidist = ii_ * e.distance;
            const Cycle a_hi =
                std::min(ow.hi + iidist, a_lo + cover_cap - 1);
            for (Cycle a = a_lo; a <= a_hi; ++a)
                clause(s, {~mkLit(cv.e), neg(klit(w, cv.d)),
                           neg(ple(p, a - lrb_)), ole(w, a - iidist - 1),
                           mkLit(cv.r0 + static_cast<Var>(modSlot(a)))});
        }
    }
    std::vector<Lit> xs;
    for (ClusterId c = 0; c < nc_; ++c)
        for (Cycle sl = 0; sl < ii_; ++sl) {
            xs.clear();
            for (OpId u : values)
                xs.push_back(
                    mkLit(ops_[static_cast<std::size_t>(u)].l0 +
                          static_cast<Var>(c * ii_ + sl)));
            for (const CommVars &cv : comms_)
                if (cv.d == c && cv.r0 >= 0)
                    xs.push_back(mkLit(cv.r0 + static_cast<Var>(sl)));
            atMostK(s, xs, regs);
        }
}

IiEncoding::Status
IiEncoding::build(Solver &s)
{
    if (!computeWindows())
        return Status::Infeasible;
    std::int64_t order_vars = 0;
    for (const OpVars &ov : ops_)
        order_vars += ov.hi - ov.lo;
    if (order_vars > MAX_ORDER_VARS)
        return Status::TooLarge;

    act_ = mkLit(s.newVar());
    ++vars_;
    emitTimeChains(s);
    emitClusterConstraints(s);
    emitCommStructure(s);
    emitDependences(s);
    emitWindowCaps(s);
    emitFuCapacity(s);
    emitBusCapacity(s);
    emitRegisterPressure(s);
    return Status::Ok;
}

Cycle
IiEncoding::modelTime(const Solver &s, OpId v) const
{
    const OpVars &ov = ops_[static_cast<std::size_t>(v)];
    for (Cycle j = ov.lo; j < ov.hi; ++j)
        if (s.modelValue(ov.o0 + static_cast<Var>(j - ov.lo)))
            return j;
    return ov.hi;
}

ClusterId
IiEncoding::modelCluster(const Solver &s, OpId v) const
{
    if (nc_ == 1)
        return 0;
    const OpVars &ov = ops_[static_cast<std::size_t>(v)];
    for (ClusterId c = 0; c < nc_; ++c)
        if (s.modelValue(ov.k0 + c))
            return c;
    return 0; // unreachable: the at-least-one clause guarantees a hit
}

Cycle
IiEncoding::modelStart(const Solver &s, int pair) const
{
    const CommVars &cv = comms_[static_cast<std::size_t>(pair)];
    for (Cycle j = cv.xlo; j < cv.xhi; ++j)
        if (s.modelValue(cv.p0 + static_cast<Var>(j - cv.xlo)))
            return j;
    return cv.xhi;
}

bool
IiEncoding::decode(const Solver &s, ModuloSchedule &out) const
{
    std::vector<Cycle> time(n_);
    std::vector<ClusterId> cluster(n_);
    Cycle min_time = CYCLE_MAX;
    for (std::size_t v = 0; v < n_; ++v) {
        time[v] = modelTime(s, static_cast<OpId>(v));
        cluster[v] = modelCluster(s, static_cast<OpId>(v));
        min_time = std::min(min_time, time[v]);
    }
    // Normalise exactly like the B&B winner: shift up by whole stages
    // until every op time is non-negative.
    Cycle shift = 0;
    if (min_time < 0)
        shift = ((-min_time + ii_ - 1) / ii_) * ii_;

    out.reset(ii_, n_, nc_);
    for (std::size_t v = 0; v < n_; ++v) {
        auto &pv = out.placed(static_cast<OpId>(v));
        pv.cluster = cluster[v];
        pv.time = time[v] + shift;
        pv.outLatency = graph_.opLatency(static_cast<OpId>(v));
        pv.missScheduled = false;
    }

    // Emit one transfer per (producer, destination) actually read
    // across clusters, on the lowest bus free at the decoded start.
    Mrt mrt(machine_, ii_);
    for (std::size_t u = 0; u < n_; ++u) {
        for (ClusterId d = 0; d < nc_; ++d) {
            const int p = pair_of_[u * static_cast<std::size_t>(nc_) +
                                   static_cast<std::size_t>(d)];
            if (p < 0 || d == cluster[u])
                continue;
            bool needed = false;
            for (int ei : graph_.outEdges(static_cast<OpId>(u))) {
                const auto &e =
                    graph_.edges()[static_cast<std::size_t>(ei)];
                if (e.isRegFlow() && e.dst != static_cast<OpId>(u) &&
                    cluster[static_cast<std::size_t>(e.dst)] == d) {
                    needed = true;
                    break;
                }
            }
            if (!needed)
                continue;
            const Cycle x = modelStart(s, p) + shift;
            const int bus = mrt.findFreeBusAt(mrt.slot(x));
            if (bus == BUS_NONE)
                return false;
            if (bus != BUS_UNBOUNDED)
                mrt.reserveBusAt(bus, mrt.slot(x));
            out.comms().push_back({static_cast<OpId>(u), cluster[u], d,
                                   x, bus});
        }
    }
    return true;
}

void
IiEncoding::blockModel(Solver &s)
{
    std::vector<Lit> cl;
    std::vector<ClusterId> cluster(n_);
    for (std::size_t v = 0; v < n_; ++v) {
        const Cycle t = modelTime(s, static_cast<OpId>(v));
        cluster[v] = modelCluster(s, static_cast<OpId>(v));
        cl.push_back(neg(ole(static_cast<OpId>(v), t)));
        cl.push_back(ole(static_cast<OpId>(v), t - 1));
        if (nc_ > 1)
            cl.push_back(~klit(static_cast<OpId>(v), cluster[v]));
    }
    for (std::size_t u = 0; u < n_; ++u)
        for (ClusterId d = 0; d < nc_; ++d) {
            const int p = pair_of_.empty()
                              ? -1
                              : pair_of_[u * static_cast<std::size_t>(
                                                 nc_) +
                                         static_cast<std::size_t>(d)];
            if (p < 0 || d == cluster[u])
                continue;
            bool needed = false;
            for (int ei : graph_.outEdges(static_cast<OpId>(u))) {
                const auto &e =
                    graph_.edges()[static_cast<std::size_t>(ei)];
                if (e.isRegFlow() && e.dst != static_cast<OpId>(u) &&
                    cluster[static_cast<std::size_t>(e.dst)] == d) {
                    needed = true;
                    break;
                }
            }
            if (!needed)
                continue;
            const Cycle x = modelStart(s, p);
            cl.push_back(neg(ple(p, x)));
            cl.push_back(ple(p, x - 1));
        }
    clauseV(s, cl);
}

} // namespace mvp::sched::sat
