/**
 * @file
 * Exact trace-driven locality oracle.
 *
 * Simulates the complete access stream of a reference set through one
 * cache (LRU within sets) and reports exact per-instruction miss ratios.
 * Serves two purposes: property-testing the CME sampling solver, and
 * acting as a drop-in LocalityAnalysis for the scheduler when exactness
 * matters more than analysis speed.
 */

#ifndef MVP_CME_ORACLE_HH
#define MVP_CME_ORACLE_HH

#include <mutex>
#include <unordered_map>
#include <vector>

#include "cme/locality.hh"
#include "cme/setkey.hh"

namespace mvp::cme
{

/**
 * Exact cache-behaviour oracle bound to one loop nest. Thread-safe:
 * concurrent queries share the memo under a mutex (simulation itself
 * runs unlocked; a race on one fresh set costs a redundant identical
 * simulation, never a wrong answer).
 */
class CacheOracle : public LocalityAnalysis
{
  public:
    explicit CacheOracle(const ir::LoopNest &nest);

    const ir::LoopNest &loop() const override { return nest_; }

    double missesPerIteration(const std::vector<OpId> &set,
                              const CacheGeom &geom) override;

    double missRatio(const std::vector<OpId> &set, OpId op,
                     const CacheGeom &geom) override;

    /** Exact miss count of every op in @p set over the full nest. */
    std::unordered_map<OpId, std::int64_t>
    missCounts(const std::vector<OpId> &set, const CacheGeom &geom);

  private:
    struct SimResult
    {
        std::unordered_map<OpId, std::int64_t> misses;
        std::int64_t points = 0;
    };

    /**
     * @p set must be canonical (sorted, duplicate-free). The returned
     * reference stays valid for the oracle's lifetime (unordered_map
     * references survive rehash, and memoised results are never
     * mutated).
     */
    const SimResult &simulate(const std::vector<OpId> &set,
                              const CacheGeom &geom);

    const ir::LoopNest &nest_;
    mutable std::mutex mu_;   ///< guards memo_
    std::unordered_map<detail::QueryKey, SimResult, detail::QueryHash,
                       detail::QueryEq>
        memo_;
};

} // namespace mvp::cme

#endif // MVP_CME_ORACLE_HH
