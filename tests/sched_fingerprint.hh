/**
 * @file
 * Schedule fingerprinting shared by the equivalence and parallel-driver
 * tests: a complete ScheduleResult — II, placements, communications,
 * MaxLive, the stats that golden runs pinned — folded into one FNV
 * hash, plus the sweep that produces the 288 golden (config key ->
 * fingerprint) pairs of tests/golden_schedules.inc.
 */

#ifndef MVP_TESTS_SCHED_FINGERPRINT_HH
#define MVP_TESTS_SCHED_FINGERPRINT_HH

#include <cstdint>
#include <map>
#include <string>

#include "sched/scheduler.hh"

namespace mvp::sched
{

class Fingerprint
{
  public:
    void add(std::uint64_t x)
    {
        for (int i = 0; i < 8; ++i) {
            h_ ^= (x >> (8 * i)) & 0xff;
            h_ *= 1099511628211ULL;
        }
    }

    void add(std::int64_t x) { add(static_cast<std::uint64_t>(x)); }
    void add(std::int32_t x)
    {
        add(static_cast<std::uint64_t>(static_cast<std::uint32_t>(x)));
    }
    void add(bool x) { add(static_cast<std::uint64_t>(x ? 1 : 0)); }

    std::uint64_t value() const { return h_; }

  private:
    std::uint64_t h_ = 1469598103934665603ULL;
};

inline std::uint64_t
fingerprintResult(const ScheduleResult &r)
{
    Fingerprint f;
    f.add(r.ok);
    if (!r.ok)
        return f.value();
    const ModuloSchedule &s = r.schedule;
    f.add(s.ii());
    for (const auto &p : s.placements()) {
        f.add(p.cluster);
        f.add(p.time);
        f.add(p.outLatency);
        f.add(p.missScheduled);
    }
    for (const auto &c : s.comms()) {
        f.add(c.producer);
        f.add(c.from);
        f.add(c.to);
        f.add(c.xferStart);
        f.add(static_cast<std::int32_t>(c.bus));
    }
    for (int ml : s.maxLive())
        f.add(static_cast<std::int32_t>(ml));
    f.add(static_cast<std::int64_t>(r.stats.iiAttempts));
    f.add(static_cast<std::int64_t>(r.stats.missScheduledLoads));
    return f.value();
}

} // namespace mvp::sched

#endif // MVP_TESTS_SCHED_FINGERPRINT_HH
