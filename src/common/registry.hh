/**
 * @file
 * Name -> factory table shared by the pluggable-component registries.
 *
 * The scheduler backends (sched/backend.hh) and the locality providers
 * (cme/provider.hh) both expose the same registry surface: register (or
 * replace) a factory under a stable string name, look it up, enumerate
 * the names. This table implements that once; the registries wrap it
 * with their domain-specific create()/bind() entry points.
 *
 * Not thread-safe for concurrent add(); the built-ins register inside
 * the owning registry's constructor and runtime extension is expected
 * to happen at startup, before any fan-out.
 */

#ifndef MVP_COMMON_REGISTRY_HH
#define MVP_COMMON_REGISTRY_HH

#include <algorithm>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/logging.hh"

namespace mvp
{

template <typename Factory>
class NamedFactoryTable
{
  public:
    /** Register (or replace) a factory under @p name. */
    void add(std::string name, Factory factory)
    {
        for (auto &[existing, f] : entries_) {
            if (existing == name) {
                f = std::move(factory);
                return;
            }
        }
        entries_.emplace_back(std::move(name), std::move(factory));
    }

    /** True when @p name resolves to a factory. */
    bool has(const std::string &name) const
    {
        return std::any_of(entries_.begin(), entries_.end(),
                           [&](const auto &e) { return e.first == name; });
    }

    /**
     * The factory registered under @p name; fatal() on unknown names,
     * describing the component @p kind and listing the known names.
     */
    const Factory &get(const std::string &name,
                       std::string_view kind) const
    {
        for (const auto &[existing, factory] : entries_)
            if (existing == name)
                return factory;
        std::string known;
        for (const auto &n : names())
            known += (known.empty() ? "" : ", ") + n;
        mvp_fatal("unknown ", kind, " '", name, "' (known: ", known,
                  ")");
    }

    /** All registered names, sorted. */
    std::vector<std::string> names() const
    {
        std::vector<std::string> out;
        out.reserve(entries_.size());
        for (const auto &[name, factory] : entries_)
            out.push_back(name);
        std::sort(out.begin(), out.end());
        return out;
    }

  private:
    std::vector<std::pair<std::string, Factory>> entries_;
};

} // namespace mvp

#endif // MVP_COMMON_REGISTRY_HH
