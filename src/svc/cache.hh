/**
 * @file
 * Content-addressed schedule cache.
 *
 * The scheduling service memoises whole reply payloads under the
 * canonical printed form of (options, loop, machine) — see
 * svc/protocol.hh for the key definition. Because the key is the
 * *canonical* rendering, textual variants of the same request
 * (whitespace, comments, block order, option order, redundant
 * defaults) all address one entry, and a hit returns bytes that are
 * identical to what the cold computation produced — the warm path is
 * invisible in the replies.
 *
 * Sharded exactly like cme::detail::ShardedRatioMemo: 16 shards
 * selected by the top hash bits, one mutex each, so concurrent pool
 * workers rarely contend. Publication is keep-the-winner: when two
 * workers race the same fresh key, the first insert sticks and the
 * loser adopts the stored bytes — both computed the same deterministic
 * payload, so which one wins is unobservable.
 */

#ifndef MVP_SVC_CACHE_HH
#define MVP_SVC_CACHE_HH

#include <array>
#include <cstddef>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/strutil.hh"

namespace mvp::svc
{

/** Canonical-key -> reply-payload store (thread-safe). */
class ScheduleCache
{
  public:
    /** Copy the payload stored under @p key into @p out. */
    bool lookup(const std::string &key, std::string *out) const
    {
        const Shard &shard = shardFor(key);
        std::lock_guard<std::mutex> lock(shard.mu);
        const auto it = shard.map.find(key);
        if (it == shard.map.end())
            return false;
        *out = it->second;
        return true;
    }

    /**
     * Publish @p payload under @p key unless the key is already
     * present (keep-the-winner). Returns the stored bytes either way,
     * so racing computers converge on one published reply.
     */
    std::string tryInsert(const std::string &key, std::string payload)
    {
        Shard &shard = shardFor(key);
        std::lock_guard<std::mutex> lock(shard.mu);
        const auto [it, inserted] =
            shard.map.emplace(key, std::move(payload));
        return it->second;
    }

    /** Number of cached replies. */
    std::size_t size() const
    {
        std::size_t n = 0;
        for (const Shard &shard : shards_) {
            std::lock_guard<std::mutex> lock(shard.mu);
            n += shard.map.size();
        }
        return n;
    }

    /**
     * Visit every (key, payload) pair, one shard lock at a time (the
     * persistence writer sorts the snapshot afterwards — shard order
     * is hash order, not canonical order).
     */
    template <typename Fn>
    void forEach(Fn &&fn) const
    {
        for (const Shard &shard : shards_) {
            std::lock_guard<std::mutex> lock(shard.mu);
            for (const auto &[key, payload] : shard.map)
                fn(key, payload);
        }
    }

  private:
    static constexpr std::size_t N_SHARDS = 16;

    struct Shard
    {
        mutable std::mutex mu;
        std::unordered_map<std::string, std::string> map;
    };

    const Shard &shardFor(const std::string &key) const
    {
        return shards_[fnv1a(key) >> 60];
    }

    Shard &shardFor(const std::string &key)
    {
        return shards_[fnv1a(key) >> 60];
    }

    std::array<Shard, N_SHARDS> shards_;
};

} // namespace mvp::svc

#endif // MVP_SVC_CACHE_HH
