#include "text/format.hh"

#include <cctype>
#include <fstream>
#include <map>
#include <sstream>

#include "common/logging.hh"

namespace mvp::text
{

namespace
{

// ----------------------------------------------------------- printing

/** Quote a name for the text format; embedded quotes are unsupported. */
std::string
quoted(const std::string &name)
{
    if (name.find('"') != std::string::npos ||
        name.find('\n') != std::string::npos)
        mvp_fatal("name '", name,
                  "' cannot be printed: contains a quote or newline");
    return '"' + name + '"';
}

/**
 * Canonical affine rendering over the nest's loop-variable names:
 * non-zero coefficient terms outermost first, the constant last (alone
 * when nothing else prints), e.g. "2*i + j - 1".
 */
std::string
affineToText(const ir::AffineExpr &expr,
             const std::vector<ir::LoopDim> &loops)
{
    std::string out;
    auto term = [&](std::int64_t value, const std::string &var) {
        if (value == 0)
            return;
        const std::int64_t mag = value < 0 ? -value : value;
        if (out.empty())
            out += value < 0 ? "-" : "";
        else
            out += value < 0 ? " - " : " + ";
        if (var.empty())
            out += std::to_string(mag);
        else if (mag == 1)
            out += var;
        else
            out += std::to_string(mag) + "*" + var;
    };
    for (std::size_t d = 0; d < loops.size(); ++d)
        term(expr.coeff(d), loops[d].name);
    if (expr.coeffs.size() > loops.size())
        mvp_fatal("affine expression has more coefficients than loops");
    term(expr.constant, "");
    return out.empty() ? "0" : out;
}

std::string
operandToText(const ir::Operand &in)
{
    if (in.isLiveIn())
        return "_";
    std::string out("%");
    out += std::to_string(in.producer);
    if (in.distance != 0)
        out += "@" + std::to_string(in.distance);
    return out;
}

std::string
refToText(const ir::AffineRef &ref, const ir::LoopNest &nest)
{
    std::string out = nest.array(ref.array).name + "[";
    for (std::size_t d = 0; d < ref.index.size(); ++d) {
        if (d)
            out += ", ";
        out += affineToText(ref.index[d], nest.loops());
    }
    out += "]";
    return out;
}

// ------------------------------------------------------------ lexing

enum class Tok
{
    Ident,    ///< bare word: keywords, array names, loop variables
    String,   ///< "quoted"
    Number,   ///< decimal or 0x hex (no sign; '-' lexes separately)
    OpRef,    ///< %N
    Punct,    ///< one of { } [ ] ( ) , = * + - @ _ or ->
    End,
};

struct Token
{
    Tok kind = Tok::End;
    std::string text;        ///< ident/punct spelling, string contents
    std::int64_t number = 0; ///< Number and OpRef payload
    int line = 0;
};

/**
 * Tokenise the whole input. `#` starts a comment running to the end of
 * the line; newlines are otherwise insignificant, so the grammar is
 * free-form even though the canonical printer is line-oriented.
 */
class Lexer
{
  public:
    Lexer(const std::string &text, std::string origin)
        : text_(text), origin_(std::move(origin))
    {
    }

    const std::string &origin() const { return origin_; }

    /** Token @p ahead positions from the cursor (0 = next). */
    const Token &peek(std::size_t ahead = 0)
    {
        while (tokens_.size() <= ahead)
            tokens_.push_back(lexNext());
        return tokens_[ahead];
    }

    Token next()
    {
        peek();
        Token tok = std::move(tokens_.front());
        tokens_.erase(tokens_.begin());
        return tok;
    }

    [[noreturn]] void fail(const std::string &what)
    {
        mvp_fatal(origin_, ":", peek().line, ": ", what);
    }

  private:
    Token lexNext()
    {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c == '\n') {
                ++line_;
                ++pos_;
            } else if (std::isspace(static_cast<unsigned char>(c))) {
                ++pos_;
            } else if (c == '#') {
                while (pos_ < text_.size() && text_[pos_] != '\n')
                    ++pos_;
            } else {
                break;
            }
        }
        Token tok;
        tok.line = line_;
        if (pos_ >= text_.size())
            return tok;

        const char c = text_[pos_];
        if (c == '"') {
            const auto end = text_.find('"', pos_ + 1);
            if (end == std::string::npos ||
                text_.find('\n', pos_) < end)
                mvp_fatal(origin_, ":", line_, ": unterminated string");
            tok.kind = Tok::String;
            tok.text = text_.substr(pos_ + 1, end - pos_ - 1);
            pos_ = end + 1;
            return tok;
        }
        if (std::isdigit(static_cast<unsigned char>(c))) {
            tok.kind = Tok::Number;
            tok.number = lexNumber();
            return tok;
        }
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            std::size_t end = pos_;
            while (end < text_.size() &&
                   (std::isalnum(static_cast<unsigned char>(text_[end])) ||
                    text_[end] == '_' || text_[end] == '.'))
                ++end;
            tok.text = text_.substr(pos_, end - pos_);
            // A lone underscore is the live-in operand, not a name.
            tok.kind = tok.text == "_" ? Tok::Punct : Tok::Ident;
            pos_ = end;
            return tok;
        }
        if (c == '%') {
            ++pos_;
            if (pos_ >= text_.size() ||
                !std::isdigit(static_cast<unsigned char>(text_[pos_])))
                mvp_fatal(origin_, ":", line_, ": '%' wants an op number");
            tok.kind = Tok::OpRef;
            tok.number = lexNumber();
            return tok;
        }
        if (c == '-' && pos_ + 1 < text_.size() &&
            text_[pos_ + 1] == '>') {
            tok.kind = Tok::Punct;
            tok.text = "->";
            pos_ += 2;
            return tok;
        }
        if (std::string("{}[](),=*+-@").find(c) != std::string::npos) {
            tok.kind = Tok::Punct;
            tok.text = std::string(1, c);
            ++pos_;
            return tok;
        }
        mvp_fatal(origin_, ":", line_, ": unexpected character '", c, "'");
    }

    std::int64_t lexNumber()
    {
        std::size_t end = pos_;
        int base = 10;
        if (text_[pos_] == '0' && pos_ + 1 < text_.size() &&
            (text_[pos_ + 1] == 'x' || text_[pos_ + 1] == 'X')) {
            base = 16;
            end += 2;
        }
        const std::size_t digits = end;
        while (end < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[end]))))
            ++end;
        const std::string spelling = text_.substr(pos_, end - pos_);
        std::size_t used = 0;
        std::int64_t value = 0;
        try {
            value = std::stoll(text_.substr(digits, end - digits), &used,
                               base);
        } catch (...) {
            mvp_fatal(origin_, ":", line_, ": bad number '", spelling, "'");
        }
        if (used != end - digits)
            mvp_fatal(origin_, ":", line_, ": bad number '", spelling, "'");
        pos_ = end;
        return value;
    }

    const std::string &text_;
    std::string origin_;
    std::size_t pos_ = 0;
    int line_ = 1;
    std::vector<Token> tokens_;   ///< one-token lookahead buffer
};

// ----------------------------------------------------------- parsing

/** Recursive-descent parser over the token stream. */
class Parser
{
  public:
    Parser(const std::string &text, const std::string &origin)
        : lex_(text, origin)
    {
    }

    bool atEnd() { return lex_.peek().kind == Tok::End; }

    bool atIdent(const char *word)
    {
        return lex_.peek().kind == Tok::Ident && lex_.peek().text == word;
    }

    void expectIdent(const char *word)
    {
        if (!atIdent(word))
            lex_.fail(std::string("expected '") + word + "'");
        lex_.next();
    }

    void expectPunct(const char *punct)
    {
        if (lex_.peek().kind != Tok::Punct || lex_.peek().text != punct)
            lex_.fail(std::string("expected '") + punct + "'");
        lex_.next();
    }

    bool acceptPunct(const char *punct)
    {
        if (lex_.peek().kind != Tok::Punct || lex_.peek().text != punct)
            return false;
        lex_.next();
        return true;
    }

    bool acceptIdent(const char *word)
    {
        if (!atIdent(word))
            return false;
        lex_.next();
        return true;
    }

    std::string expectString(const char *what)
    {
        if (lex_.peek().kind != Tok::String)
            lex_.fail(std::string("expected a quoted ") + what);
        return lex_.next().text;
    }

    std::string expectIdentText(const char *what)
    {
        if (lex_.peek().kind != Tok::Ident)
            lex_.fail(std::string("expected ") + what);
        return lex_.next().text;
    }

    std::int64_t expectNumber(const char *what)
    {
        const bool negative = acceptPunct("-");
        if (lex_.peek().kind != Tok::Number)
            lex_.fail(std::string("expected ") + what);
        const std::int64_t value = lex_.next().number;
        return negative ? -value : value;
    }

    [[noreturn]] void fail(const std::string &what) { lex_.fail(what); }

    // ------------------------------------------------------ loop files

    LoopFile parseLoopFile()
    {
        LoopFile file;
        while (!atEnd()) {
            if (acceptIdent("suite")) {
                file.suite = expectString("suite name");
            } else if (atIdent("loop")) {
                file.loops.push_back(parseLoopBlock());
            } else {
                fail("expected 'suite' or 'loop'");
            }
        }
        return file;
    }

    ir::LoopNest parseLoopBlock()
    {
        expectIdent("loop");
        ir::LoopNest nest(expectString("loop name"));
        expectPunct("{");

        std::map<std::string, std::size_t> iv_depth;
        std::map<std::string, ArrayId> array_ids;
        while (!acceptPunct("}")) {
            if (atEnd())
                fail("unterminated loop block");
            if (atIdent("for"))
                parseForDim(nest, iv_depth);
            else if (atIdent("array"))
                parseArrayDecl(nest, array_ids);
            else if (lex_.peek().kind == Tok::OpRef)
                parseOp(nest, iv_depth, array_ids);
            else
                fail("expected 'for', 'array', an op ('%N = ...') or '}'");
        }
        nest.validate();
        return nest;
    }

    // ----------------------------------------------------- machines

    MachineConfig parseMachineBlock()
    {
        expectIdent("machine");
        MachineConfig cfg;
        cfg.name = expectString("machine name");
        expectPunct("{");
        while (!acceptPunct("}")) {
            if (atEnd())
                fail("unterminated machine block");
            const std::string key = expectIdentText("a machine key");
            parseMachineKey(cfg, key);
        }
        cfg.validate();
        return cfg;
    }

  private:
    void parseForDim(ir::LoopNest &nest,
                     std::map<std::string, std::size_t> &iv_depth)
    {
        expectIdent("for");
        ir::LoopDim dim;
        dim.name = expectIdentText("a loop-variable name");
        if (iv_depth.count(dim.name))
            fail("duplicate loop variable '" + dim.name + "'");
        expectPunct("=");
        dim.lower = expectNumber("a lower bound");
        expectIdent("to");
        dim.upper = expectNumber("an (exclusive) upper bound");
        if (acceptIdent("step"))
            dim.step = expectNumber("a step");
        iv_depth.emplace(dim.name, nest.addLoop(dim));
    }

    void parseArrayDecl(ir::LoopNest &nest,
                        std::map<std::string, ArrayId> &array_ids)
    {
        expectIdent("array");
        ir::ArrayDecl decl;
        decl.name = expectIdentText("an array name");
        if (array_ids.count(decl.name))
            fail("duplicate array '" + decl.name + "'");
        while (acceptPunct("[")) {
            decl.dims.push_back(expectNumber("an array extent"));
            expectPunct("]");
        }
        if (decl.dims.empty())
            fail("array '" + decl.name + "' wants at least one [extent]");
        expectIdent("elem");
        expectPunct("=");
        decl.elemSize = static_cast<int>(expectNumber("an element size"));
        expectIdent("base");
        expectPunct("=");
        const std::int64_t base = expectNumber("a base address");
        if (base < 0)
            fail("array '" + decl.name + "' has a negative base address");
        decl.base = static_cast<Addr>(base);
        array_ids.emplace(decl.name, nest.addArray(decl));
    }

    ir::Opcode parseOpcode(const std::string &word)
    {
        using ir::Opcode;
        for (const Opcode op :
             {Opcode::IAdd, Opcode::ISub, Opcode::IMul, Opcode::IDiv,
              Opcode::Copy, Opcode::FAdd, Opcode::FSub, Opcode::FMul,
              Opcode::FDiv, Opcode::FMadd, Opcode::Load, Opcode::Store})
            if (ir::opcodeName(op) == word)
                return op;
        fail("unknown opcode '" + word + "'");
    }

    ir::AffineExpr
    parseAffine(const std::map<std::string, std::size_t> &iv_depth)
    {
        ir::AffineExpr expr;
        bool first = true;
        for (;;) {
            std::int64_t sign = 1;
            if (acceptPunct("-"))
                sign = -1;
            else if (acceptPunct("+"))
                sign = 1;
            else if (!first)
                break;
            first = false;

            if (lex_.peek().kind == Tok::Number) {
                std::int64_t value = lex_.next().number;
                if (acceptPunct("*")) {
                    // coefficient * variable
                    addTerm(expr, iv_depth, sign * value,
                            expectIdentText("a loop variable"));
                } else {
                    expr.constant += sign * value;
                }
            } else if (lex_.peek().kind == Tok::Ident) {
                addTerm(expr, iv_depth, sign, lex_.next().text);
            } else {
                fail("expected an affine term");
            }
        }
        return expr;
    }

    void addTerm(ir::AffineExpr &expr,
                 const std::map<std::string, std::size_t> &iv_depth,
                 std::int64_t coeff, const std::string &var)
    {
        const auto it = iv_depth.find(var);
        if (it == iv_depth.end())
            fail("unknown loop variable '" + var + "'");
        if (expr.coeffs.size() <= it->second)
            expr.coeffs.resize(it->second + 1, 0);
        expr.coeffs[it->second] += coeff;
    }

    ir::AffineRef
    parseRef(const std::map<std::string, std::size_t> &iv_depth,
             const std::map<std::string, ArrayId> &array_ids)
    {
        const std::string name = expectIdentText("an array name");
        const auto it = array_ids.find(name);
        if (it == array_ids.end())
            fail("reference to undeclared array '" + name + "'");
        ir::AffineRef ref;
        ref.array = it->second;
        expectPunct("[");
        for (;;) {
            ref.index.push_back(parseAffine(iv_depth));
            if (acceptPunct("]"))
                break;
            expectPunct(",");
        }
        return ref;
    }

    void parseOp(ir::LoopNest &nest,
                 const std::map<std::string, std::size_t> &iv_depth,
                 const std::map<std::string, ArrayId> &array_ids)
    {
        const std::int64_t id = lex_.next().number;
        if (id != static_cast<std::int64_t>(nest.size()))
            fail("op ids must be dense and in order: expected %" +
                 std::to_string(nest.size()) + ", got %" +
                 std::to_string(id));
        expectPunct("=");
        ir::Operation op;
        op.opcode = parseOpcode(expectIdentText("an opcode"));
        if (lex_.peek().kind == Tok::String)
            op.name = lex_.next().text;

        // Register operands: %N, %N@D or _ (live-in). An OpRef followed
        // by '=' is the next operation's header, not an operand — the
        // grammar is newline-insensitive, so this one spot needs a
        // second token of lookahead.
        for (;;) {
            if (lex_.peek().kind == Tok::OpRef &&
                !(lex_.peek(1).kind == Tok::Punct &&
                  lex_.peek(1).text == "=")) {
                ir::Operand in;
                in.producer =
                    static_cast<OpId>(lex_.next().number);
                if (acceptPunct("@"))
                    in.distance =
                        static_cast<int>(expectNumber("a distance"));
                op.inputs.push_back(in);
            } else if (acceptPunct("_")) {
                op.inputs.push_back(ir::liveIn());
            } else {
                break;
            }
        }

        if (op.isStore()) {
            expectPunct("->");
            op.memRef = parseRef(iv_depth, array_ids);
        } else if (op.isLoad()) {
            op.memRef = parseRef(iv_depth, array_ids);
        }
        nest.addOp(std::move(op));
    }

    void parseMachineKey(MachineConfig &cfg, const std::string &key)
    {
        auto num = [&] { return expectNumber("a value"); };
        auto flag = [&] {
            if (acceptIdent("true"))
                return true;
            if (acceptIdent("false"))
                return false;
            fail("expected 'true' or 'false' after '" + key + "'");
        };
        if (key == "clusters")
            cfg.nClusters = static_cast<int>(num());
        else if (key == "int_fus")
            cfg.intFusPerCluster = static_cast<int>(num());
        else if (key == "fp_fus")
            cfg.fpFusPerCluster = static_cast<int>(num());
        else if (key == "mem_fus")
            cfg.memFusPerCluster = static_cast<int>(num());
        else if (key == "regs")
            cfg.regsPerCluster = static_cast<int>(num());
        else if (key == "reg_buses")
            cfg.nRegBuses = static_cast<int>(num());
        else if (key == "reg_bus_latency")
            cfg.regBusLatency = num();
        else if (key == "unbounded_reg_buses")
            cfg.unboundedRegBuses = flag();
        else if (key == "mem_buses")
            cfg.nMemBuses = static_cast<int>(num());
        else if (key == "mem_bus_latency")
            cfg.memBusLatency = num();
        else if (key == "unbounded_mem_buses")
            cfg.unboundedMemBuses = flag();
        else if (key == "cache_bytes")
            cfg.totalCacheBytes = num();
        else if (key == "cache_line")
            cfg.cacheLineBytes = static_cast<int>(num());
        else if (key == "cache_assoc")
            cfg.cacheAssoc = static_cast<int>(num());
        else if (key == "mshr")
            cfg.mshrEntries = static_cast<int>(num());
        else if (key == "lat_cache_hit")
            cfg.latCacheHit = num();
        else if (key == "lat_main_memory")
            cfg.latMainMemory = num();
        else if (key == "lat_int")
            cfg.latInt = num();
        else if (key == "lat_int_mul")
            cfg.latIntMul = num();
        else if (key == "lat_int_div")
            cfg.latIntDiv = num();
        else if (key == "lat_fp")
            cfg.latFp = num();
        else if (key == "lat_fp_div")
            cfg.latFpDiv = num();
        else if (key == "lat_store")
            cfg.latStore = num();
        else
            fail("unknown machine key '" + key + "'");
    }

    Lexer lex_;
};

std::string
readFileOrFatal(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        mvp_fatal("cannot read '", path, "'");
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

void
writeFileOrFatal(const std::string &path, const std::string &contents)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        mvp_fatal("cannot write '", path, "'");
    out << contents;
    if (!out)
        mvp_fatal("write to '", path, "' failed");
}

} // namespace

// ----------------------------------------------------------- loops

std::string
printLoop(const ir::LoopNest &nest)
{
    std::ostringstream os;
    os << "loop " << quoted(nest.name()) << " {\n";
    for (const auto &dim : nest.loops()) {
        os << "  for " << dim.name << " = " << dim.lower << " to "
           << dim.upper;
        if (dim.step != 1)
            os << " step " << dim.step;
        os << "\n";
    }
    for (const auto &arr : nest.arrays()) {
        os << "  array " << arr.name;
        for (const auto d : arr.dims)
            os << "[" << d << "]";
        os << " elem=" << arr.elemSize << " base=0x" << std::hex
           << arr.base << std::dec << "\n";
    }
    for (const auto &op : nest.ops()) {
        os << "  %" << op.id << " = " << ir::opcodeName(op.opcode);
        if (!op.name.empty())
            os << " " << quoted(op.name);
        for (const auto &in : op.inputs)
            os << " " << operandToText(in);
        if (op.memRef) {
            if (op.isStore())
                os << " ->";
            os << " " << refToText(*op.memRef, nest);
        }
        os << "\n";
    }
    os << "}\n";
    return os.str();
}

std::string
printLoopFile(const LoopFile &file)
{
    std::string out;
    if (!file.suite.empty())
        out += "suite " + quoted(file.suite) + "\n\n";
    for (std::size_t i = 0; i < file.loops.size(); ++i) {
        if (i)
            out += "\n";
        out += printLoop(file.loops[i]);
    }
    return out;
}

LoopFile
parseLoops(const std::string &text, const std::string &origin)
{
    return Parser(text, origin).parseLoopFile();
}

ir::LoopNest
parseLoop(const std::string &text, const std::string &origin)
{
    LoopFile file = parseLoops(text, origin);
    if (file.loops.size() != 1)
        mvp_fatal(origin, ": expected exactly one loop block, found ",
                  file.loops.size());
    return std::move(file.loops.front());
}

LoopFile
loadLoopFile(const std::string &path)
{
    return parseLoops(readFileOrFatal(path), path);
}

void
saveLoopFile(const LoopFile &file, const std::string &path)
{
    writeFileOrFatal(path, printLoopFile(file));
}

// --------------------------------------------------------- machines

std::string
printMachine(const MachineConfig &cfg)
{
    std::ostringstream os;
    os << "machine " << quoted(cfg.name) << " {\n";
    os << "  clusters " << cfg.nClusters << "\n";
    os << "  int_fus " << cfg.intFusPerCluster << "\n";
    os << "  fp_fus " << cfg.fpFusPerCluster << "\n";
    os << "  mem_fus " << cfg.memFusPerCluster << "\n";
    os << "  regs " << cfg.regsPerCluster << "\n";
    os << "  reg_buses " << cfg.nRegBuses << "\n";
    os << "  reg_bus_latency " << cfg.regBusLatency << "\n";
    os << "  unbounded_reg_buses "
       << (cfg.unboundedRegBuses ? "true" : "false") << "\n";
    os << "  mem_buses " << cfg.nMemBuses << "\n";
    os << "  mem_bus_latency " << cfg.memBusLatency << "\n";
    os << "  unbounded_mem_buses "
       << (cfg.unboundedMemBuses ? "true" : "false") << "\n";
    os << "  cache_bytes " << cfg.totalCacheBytes << "\n";
    os << "  cache_line " << cfg.cacheLineBytes << "\n";
    os << "  cache_assoc " << cfg.cacheAssoc << "\n";
    os << "  mshr " << cfg.mshrEntries << "\n";
    os << "  lat_cache_hit " << cfg.latCacheHit << "\n";
    os << "  lat_main_memory " << cfg.latMainMemory << "\n";
    os << "  lat_int " << cfg.latInt << "\n";
    os << "  lat_int_mul " << cfg.latIntMul << "\n";
    os << "  lat_int_div " << cfg.latIntDiv << "\n";
    os << "  lat_fp " << cfg.latFp << "\n";
    os << "  lat_fp_div " << cfg.latFpDiv << "\n";
    os << "  lat_store " << cfg.latStore << "\n";
    os << "}\n";
    return os.str();
}

MachineConfig
parseMachine(const std::string &text, const std::string &origin)
{
    Parser parser(text, origin);
    MachineConfig cfg = parser.parseMachineBlock();
    if (!parser.atEnd())
        parser.fail("trailing input after the machine block");
    return cfg;
}

MachineConfig
loadMachineFile(const std::string &path)
{
    return parseMachine(readFileOrFatal(path), path);
}

void
saveMachineFile(const MachineConfig &cfg, const std::string &path)
{
    writeFileOrFatal(path, printMachine(cfg));
}

// -------------------------------------------------------- scenarios

std::string
printScenario(const ScenarioText &scenario)
{
    return printLoop(scenario.loop) + "\n" + printMachine(scenario.machine);
}

ScenarioText
parseScenario(const std::string &text, const std::string &origin)
{
    Parser parser(text, origin);
    ScenarioText out;
    bool have_loop = false;
    bool have_machine = false;
    while (!parser.atEnd()) {
        if (parser.atIdent("loop")) {
            if (have_loop)
                parser.fail("a scenario holds exactly one loop block");
            out.loop = parser.parseLoopBlock();
            have_loop = true;
        } else if (parser.atIdent("machine")) {
            if (have_machine)
                parser.fail("a scenario holds exactly one machine block");
            out.machine = parser.parseMachineBlock();
            have_machine = true;
        } else if (parser.acceptIdent("suite")) {
            // Tolerated so loop-file text pastes in unchanged; the
            // suite name plays no part in scheduling one scenario.
            (void)parser.expectString("suite name");
        } else {
            parser.fail("expected a 'loop' or 'machine' block");
        }
    }
    if (!have_loop)
        mvp_fatal(origin, ": scenario has no loop block");
    if (!have_machine)
        mvp_fatal(origin, ": scenario has no machine block");
    return out;
}

} // namespace mvp::text
