/**
 * @file
 * Load generator and correctness harness for the scheduling service:
 * sustained schedules/sec, cold vs warm.
 *
 * Builds a mixed request stream (builtin suites plus a `gen:` suite,
 * two machines, rmca plus a few verify-backend requests), partitions
 * it across N in-process protocol sessions (one per simulated client,
 * each on its own thread), and drives the same SchedService through
 * R rounds: round 0 is cold (every key misses), rounds 1+ are warm
 * (every key hits the content-addressed cache).
 *
 * What it asserts, independent of what it measures:
 *
 *  - every warm reply is byte-identical to the cold reply of the same
 *    request — the cache is invisible in the bytes;
 *  - with --check, every service reply is byte-identical to an
 *    offline pipeline that parses the same payload and schedules it
 *    directly (no service, no cache, fresh DDG and locality) — the
 *    batched path adds nothing and loses nothing;
 *  - with --gate, warm throughput must be >= 5x cold throughput (the
 *    CI bar).
 *
 * Prints one machine-readable line:
 *
 *   serve jobs=J clients=C requests=N rounds=R cold_sps=X warm_sps=Y
 *         speedup=S hit_rate=H p50_us=A p99_us=B fingerprint=0x...
 *
 * The fingerprint folds every cold reply payload in request order, so
 * a service change that alters any reply byte is visible in
 * BENCH_sched.json history.
 *
 * Usage: serve_bench [--jobs N] [--clients N] [--rounds N] [--check]
 *                    [--gate] [--dump-requests FILE]
 *
 * --dump-requests writes the framed request stream (batches, FLUSH,
 * QUIT) to FILE and exits — CI pipes it into mvp_served to exercise
 * the stdio transport and warm-state persistence end to end.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "cme/provider.hh"
#include "common/logging.hh"
#include "common/strutil.hh"
#include "ddg/ddg.hh"
#include "harness/flags.hh"
#include "machine/presets.hh"
#include "sched/backend.hh"
#include "svc/protocol.hh"
#include "svc/service.hh"
#include "svc/session.hh"
#include "text/format.hh"
#include "workloads/workloads.hh"

using namespace mvp;

namespace
{

/** One benchmark request: the raw payload plus its frame id. */
struct BenchRequest
{
    std::string id;
    std::string payload;
};

/** The mixed workload: every loop of three builtin suites and one
 * generated suite on two machines under rmca, plus verify-backend
 * requests for the first tomcatv loops (so the cold round pays real
 * exact-search time, like a client asking for certificates). */
std::vector<BenchRequest>
buildRequests()
{
    const char *suites[] = {"tomcatv", "swim", "hydro2d",
                            "gen:seed=11,loops=4"};
    const MachineConfig machines[] = {makeTwoCluster(),
                                      makeFourCluster()};

    std::vector<BenchRequest> out;
    int next_id = 0;
    for (const char *suite : suites) {
        const auto bench = workloads::benchmarkByName(suite);
        for (const auto &nest : bench.loops) {
            for (const auto &machine : machines) {
                text::ScenarioText scenario{nest, machine};
                BenchRequest req;
                req.id = "r" + std::to_string(next_id++);
                req.payload = "# serve_bench request\n"
                              "config backend rmca\n"
                              "config threshold 0.25\n\n" +
                              text::printScenario(scenario);
                out.push_back(std::move(req));
            }
        }
    }

    const auto tomcatv = workloads::benchmarkByName("tomcatv");
    const std::size_t n_verify =
        tomcatv.loops.size() < 2 ? tomcatv.loops.size() : 2;
    for (std::size_t i = 0; i < n_verify; ++i) {
        for (const auto &machine : machines) {
            text::ScenarioText scenario{tomcatv.loops[i], machine};
            BenchRequest req;
            req.id = "r" + std::to_string(next_id++);
            req.payload = "config backend verify\n"
                          "config threshold 0.25\n\n" +
                          text::printScenario(scenario);
            out.push_back(std::move(req));
        }
    }
    return out;
}

/** Frame a request list into protocol bytes: batches of
 * @p batch_size, each closed by FLUSH. */
std::string
frameRequests(const std::vector<const BenchRequest *> &requests,
              std::size_t batch_size)
{
    std::string out;
    std::size_t in_batch = 0;
    for (const BenchRequest *req : requests) {
        out += "REQ " + req->id + " " +
               std::to_string(req->payload.size()) + "\n";
        out += req->payload;
        out += "\n";
        if (++in_batch == batch_size) {
            out += "FLUSH\n";
            in_batch = 0;
        }
    }
    if (in_batch > 0)
        out += "FLUSH\n";
    return out;
}

/** Parse REP frames out of a session's emitted bytes. Exits loudly on
 * anything that is not a REP — the bench speaks the protocol
 * correctly, so an ERR here is a real bug. */
void
collectReplies(const std::string &emitted,
               std::map<std::string, std::string> &replies)
{
    std::size_t pos = 0;
    while (pos < emitted.size()) {
        const std::size_t eol = emitted.find('\n', pos);
        if (eol == std::string::npos)
            mvp_fatal("serve_bench: truncated frame header");
        const std::string head = emitted.substr(pos, eol - pos);
        std::size_t sp1 = head.find(' ');
        std::size_t sp2 =
            sp1 == std::string::npos ? sp1 : head.find(' ', sp1 + 1);
        if (head.compare(0, 4, "REP ") != 0 ||
            sp2 == std::string::npos)
            mvp_fatal("serve_bench: unexpected frame '", head, "'");
        const std::string id = head.substr(sp1 + 1, sp2 - sp1 - 1);
        const std::size_t nbytes = static_cast<std::size_t>(
            std::strtoll(head.c_str() + sp2 + 1, nullptr, 10));
        const std::size_t body = eol + 1;
        if (body + nbytes + 1 > emitted.size())
            mvp_fatal("serve_bench: truncated REP payload");
        replies[id] = emitted.substr(body, nbytes);
        pos = body + nbytes + 1;   // payload newline
    }
}

/** The offline pipeline: parse the payload and schedule it directly —
 * no service, no cache, fresh DDG and locality — rendering the reply
 * through the same functions. This is what the service's replies must
 * match byte for byte. */
std::string
offlineReply(const std::string &payload)
{
    svc::Request req = svc::parseRequest(payload, "<offline>");
    if (!req.error.empty())
        return svc::renderErrorReply(req.error);
    const auto graph =
        ddg::Ddg::build(req.scenario.loop, req.scenario.machine);
    const auto locality = cme::LocalityRegistry::instance().bind(
        req.options.locality, req.scenario.loop);
    sched::SchedulerOptions opt;
    opt.missThreshold = req.options.threshold;
    opt.locality = locality.get();
    opt.localityProvider = req.options.locality;
    opt.searchBudget = req.options.nodeBudget;
    opt.timeBudgetMs = req.options.timeBudgetMs;
    opt.exactBackend = req.options.exactBackend;
    opt.searchJobs = 1;
    const auto result = sched::scheduleWithBackend(
        req.options.backend, graph, req.scenario.machine, opt);
    if (!result.ok)
        return svc::renderErrorReply(result.error);
    return svc::renderReply(req, result);
}

} // namespace

int
main(int argc, char **argv)
{
    harness::parseObservabilityFlags(argc, argv);
    const int jobs = harness::parseJobsFlag(argc, argv);

    int clients = 4;
    int rounds = 3;
    bool check = false;
    bool gate = false;
    const std::string clients_s =
        harness::stripValueFlag(argc, argv, "--clients", "client count");
    if (!clients_s.empty())
        clients = std::atoi(clients_s.c_str());
    const std::string rounds_s =
        harness::stripValueFlag(argc, argv, "--rounds", "round count");
    if (!rounds_s.empty())
        rounds = std::atoi(rounds_s.c_str());
    const std::string dump = harness::stripValueFlag(
        argc, argv, "--dump-requests", "output file");
    check = harness::stripBoolFlag(argc, argv, "--check");
    gate = harness::stripBoolFlag(argc, argv, "--gate");
    harness::rejectUnknownFlags(argc, argv,
                                {"--jobs", "--clients", "--rounds",
                                 "--check", "--gate",
                                 "--dump-requests", "--log-level",
                                 "--metrics", "--trace"});
    if (clients < 1 || rounds < 2)
        mvp_fatal("serve_bench wants --clients >= 1 and --rounds >= 2 "
                  "(one cold round plus warm rounds)");

    const std::vector<BenchRequest> requests = buildRequests();

    if (!dump.empty()) {
        std::vector<const BenchRequest *> all;
        for (const auto &req : requests)
            all.push_back(&req);
        std::ofstream out(dump, std::ios::binary | std::ios::trunc);
        if (!out)
            mvp_fatal("cannot write '", dump, "'");
        const std::string stream = frameRequests(all, 8) + "QUIT\n";
        out.write(stream.data(),
                  static_cast<std::streamsize>(stream.size()));
        std::printf("dumped %zu requests to %s\n", requests.size(),
                    dump.c_str());
        return 0;
    }

    svc::SchedService service(jobs);

    // Partition requests across clients once; every round replays the
    // same per-client streams.
    std::vector<std::string> client_streams(
        static_cast<std::size_t>(clients));
    for (int c = 0; c < clients; ++c) {
        std::vector<const BenchRequest *> mine;
        for (std::size_t i = static_cast<std::size_t>(c);
             i < requests.size();
             i += static_cast<std::size_t>(clients))
            mine.push_back(&requests[i]);
        client_streams[static_cast<std::size_t>(c)] =
            frameRequests(mine, 8);
    }

    std::map<std::string, std::string> cold_replies;
    double cold_sps = 0.0;
    double warm_seconds = 0.0;
    std::int64_t warm_requests = 0;

    for (int round = 0; round < rounds; ++round) {
        std::vector<std::map<std::string, std::string>> replies(
            static_cast<std::size_t>(clients));
        const auto start = std::chrono::steady_clock::now();
        std::vector<std::thread> threads;
        for (int c = 0; c < clients; ++c)
            threads.emplace_back([&, c] {
                svc::ServiceSession session(service);
                std::string emitted;
                session.consume(
                    client_streams[static_cast<std::size_t>(c)],
                    emitted);
                collectReplies(
                    emitted, replies[static_cast<std::size_t>(c)]);
            });
        for (auto &t : threads)
            t.join();
        const double seconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                .count();

        std::map<std::string, std::string> merged;
        for (auto &m : replies)
            merged.insert(m.begin(), m.end());
        if (merged.size() != requests.size())
            mvp_fatal("round ", round, " returned ", merged.size(),
                      " replies for ", requests.size(), " requests");

        if (round == 0) {
            cold_replies = std::move(merged);
            cold_sps = static_cast<double>(requests.size()) / seconds;
        } else {
            for (const auto &[id, payload] : merged)
                if (payload != cold_replies.at(id))
                    mvp_fatal("warm reply for ", id,
                              " differs from its cold reply — the "
                              "cache leaked into the bytes");
            warm_seconds += seconds;
            warm_requests +=
                static_cast<std::int64_t>(requests.size());
        }
    }

    if (check) {
        for (const auto &req : requests)
            if (offlineReply(req.payload) != cold_replies.at(req.id))
                mvp_fatal("service reply for ", req.id,
                          " differs from the offline pipeline");
        std::printf("check: %zu replies match the offline pipeline\n",
                    requests.size());
    }

    std::string fold;
    for (const auto &req : requests)
        fold += cold_replies.at(req.id);
    const std::uint64_t fingerprint = fnv1a(fold);

    const double warm_sps =
        warm_seconds > 0.0
            ? static_cast<double>(warm_requests) / warm_seconds
            : 0.0;
    const double speedup = cold_sps > 0.0 ? warm_sps / cold_sps : 0.0;
    const auto st = service.stats();
    const double hit_rate =
        st.requests > 0 ? static_cast<double>(st.cacheHits) /
                              static_cast<double>(st.requests)
                        : 0.0;

    std::printf("serve jobs=%d clients=%d requests=%zu rounds=%d "
                "cold_sps=%.1f warm_sps=%.1f speedup=%.1f "
                "hit_rate=%.3f p50_us=%.1f p99_us=%.1f "
                "fingerprint=0x%016llx\n",
                service.jobs(), clients, requests.size(), rounds,
                cold_sps, warm_sps, speedup, hit_rate,
                st.latencyP50Us, st.latencyP99Us,
                static_cast<unsigned long long>(fingerprint));

    if (gate && speedup < 5.0) {
        std::fprintf(stderr,
                     "serve_bench: warm/cold speedup %.1f is below "
                     "the 5x gate\n",
                     speedup);
        return 1;
    }
    return 0;
}
