/**
 * @file
 * Schedule-equivalence regression: the scheduler hot-path optimisations
 * (hashed CME memo keys, the incremental per-cluster locality cache,
 * flat scratch buffers in the placement loop, the occupancy-count bus
 * scan) must not change a single emitted schedule. Every workload loop
 * is scheduled under every machine preset and scheduler variant and the
 * complete result — II, placements, communications, MaxLive — is
 * fingerprinted and compared against golden values captured from the
 * pre-optimisation implementation.
 *
 * Regenerate the golden table (only legitimate after an *intentional*
 * behaviour change) with:
 *
 *   MVP_DUMP_GOLDEN=1 ./sched_equiv_test > ../tests/golden_schedules.inc
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

#include "cme/solver.hh"
#include "ddg/ddg.hh"
#include "machine/presets.hh"
#include "sched/scheduler.hh"
#include "sched_fingerprint.hh"
#include "workloads/workloads.hh"

namespace mvp::sched
{
namespace
{

/** All (config key -> schedule fingerprint) pairs, in a stable order. */
std::map<std::string, std::uint64_t>
computeFingerprints()
{
    std::map<std::string, std::uint64_t> out;
    const int cluster_counts[] = {1, 2, 4};
    for (const auto &bench : workloads::allBenchmarks()) {
        for (std::size_t li = 0; li < bench.loops.size(); ++li) {
            const auto &nest = bench.loops[li];
            cme::CmeAnalysis cme(nest);
            for (int nc : cluster_counts) {
                const auto machine = makeConfig(nc);
                const auto graph = ddg::Ddg::build(nest, machine);
                const std::string base = bench.name + "/" +
                                         std::to_string(li) + "/c" +
                                         std::to_string(nc);
                out[base + "/baseline"] = fingerprintResult(
                    scheduleBaseline(graph, machine));
                out[base + "/rmca_t0.25"] = fingerprintResult(
                    scheduleRmca(graph, machine, 0.25, cme));
                out[base + "/rmca_t0"] = fingerprintResult(
                    scheduleRmca(graph, machine, 0.0, cme));
            }
        }
    }
    return out;
}

struct GoldenEntry
{
    const char *key;
    std::uint64_t hash;
};

const GoldenEntry GOLDEN[] = {
#include "golden_schedules.inc"
};

TEST(ScheduleEquivalence, MatchesSeedSchedules)
{
    const auto fp = computeFingerprints();

    if (std::getenv("MVP_DUMP_GOLDEN") != nullptr) {
        for (const auto &[key, hash] : fp)
            std::printf("    {\"%s\", 0x%016llxULL},\n", key.c_str(),
                        static_cast<unsigned long long>(hash));
        GTEST_SKIP() << "golden dump mode";
    }

    std::map<std::string, std::uint64_t> golden;
    for (const auto &e : GOLDEN)
        golden.emplace(e.key, e.hash);

    EXPECT_EQ(fp.size(), golden.size());
    for (const auto &[key, hash] : fp) {
        const auto it = golden.find(key);
        ASSERT_NE(it, golden.end()) << "no golden entry for " << key;
        EXPECT_EQ(hash, it->second)
            << "schedule diverged from the seed scheduler for " << key;
    }
}

/** Two independent scheduler runs must agree exactly (determinism). */
TEST(ScheduleEquivalence, Deterministic)
{
    const auto a = computeFingerprints();
    const auto b = computeFingerprints();
    EXPECT_EQ(a, b);
}

} // namespace
} // namespace mvp::sched
