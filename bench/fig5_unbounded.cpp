/**
 * @file
 * Reproduction of Figure 5: an unbounded number of register and memory
 * buses, sweeping the bus latencies.
 *
 * Axes, exactly as in the paper:
 *  - configurations: Unified, 2-cluster, 4-cluster (Table 1)
 *  - register-bus latency LRB in {1, 2, 4} (clustered only)
 *  - memory-bus latency LMB in {1, 2, 4}
 *  - scheduler: Baseline vs RMCA
 *  - cache-miss threshold in {1.00, 0.75, 0.25, 0.00}
 *
 * Each paper bar = one row here: NCYCLE_compute and NCYCLE_stall summed
 * over the eight benchmark suites, normalised to the Unified machine at
 * threshold 1.00. The paper's claims to check:
 *  - RMCA <= Baseline everywhere;
 *  - lower thresholds raise compute and cut stall; at 0.00 stall ~ 0;
 *  - at threshold 0.00 clustered totals approach the unified ones.
 *
 * The whole grid is one runSuiteSweep: every (loop, configuration)
 * point is an independent work item sharded over --jobs workers
 * (default: all cores), and the emitted table is byte-identical at any
 * job count.
 *
 * Usage: fig5_unbounded [--jobs N]
 */

#include <cstdio>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/strutil.hh"
#include "common/table.hh"
#include "harness/experiment.hh"
#include "harness/flags.hh"
#include "machine/presets.hh"

using namespace mvp;
using harness::RunConfig;

namespace
{

const double THRESHOLDS[] = {1.00, 0.75, 0.25, 0.00};

} // namespace

int
main(int argc, char **argv)
{
    harness::parseObservabilityFlags(argc, argv);
    harness::ParallelDriver driver(harness::parseJobsFlag(argc, argv));
    const std::string locality = harness::parseLocalityFlag(argc, argv);
    const std::int64_t time_budget =
        harness::parseTimeBudgetFlag(argc, argv);
    harness::rejectUnknownFlags(argc, argv,
                                {"--jobs", "--locality",
                                 "--time-budget-ms", "--log-level",
                                 "--metrics", "--trace"});
    harness::Workbench bench;

    // --- Collect every configuration of the figure, then sweep once:
    // the sharded item space is (configs x loops). ---
    struct Row
    {
        MachineConfig machine;
        Cycle lrb;
        Cycle lmb;
        const char *sched;
        double thr;
        bool ruleAfter = false;
    };
    std::vector<Row> rows;
    auto add = [&](const MachineConfig &machine, Cycle lrb, Cycle lmb,
                   const char *sched, double thr) -> Row & {
        rows.push_back({machine, lrb, lmb, sched, thr});
        return rows.back();
    };

    // Unified: the four threshold bars (scheduler identical for one
    // cluster; bus latencies are irrelevant to register traffic).
    for (double thr : THRESHOLDS)
        add(withUnboundedBuses(makeUnified(), 1, 1), 1, 1, "rmca", thr);
    rows.back().ruleAfter = true;

    for (int clusters : {2, 4}) {
        for (Cycle lrb : {1, 2, 4}) {
            for (Cycle lmb : {1, 2, 4}) {
                const auto machine = withUnboundedBuses(
                    makeConfig(clusters), lrb, lmb);
                for (const char *sched : {"baseline", "rmca"})
                    for (double thr : THRESHOLDS)
                        add(machine, lrb, lmb, sched, thr);
                rows.back().ruleAfter = true;
            }
        }
    }

    std::vector<RunConfig> configs;
    configs.reserve(rows.size());
    for (const Row &row : rows) {
        RunConfig cfg;
        cfg.machine = row.machine;
        cfg.backend = row.sched;
        cfg.locality = locality;
        cfg.threshold = row.thr;
        cfg.timeBudgetMs = time_budget;
        configs.push_back(cfg);
    }
    const auto results =
        harness::runSuiteSweep(bench, configs, {}, driver);

    // Normaliser: unified machine, threshold 1.00 (the first row).
    const double norm = static_cast<double>(results[0].total());

    TextTable table({"config", "LRB", "LMB", "sched", "thr", "compute",
                     "stall", "total", "norm"});
    table.setTitle(
        "Figure 5: unbounded buses, cycles normalised to unified@1.00");
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row &row = rows[i];
        const auto &res = results[i];
        table.addRow({row.machine.isClustered()
                          ? std::to_string(row.machine.nClusters) +
                                "-cluster"
                          : "unified",
                      row.machine.isClustered() ? std::to_string(row.lrb)
                                                : "-",
                      std::to_string(row.lmb),
                      row.sched == std::string("rmca") ? "RMCA"
                                                       : "Baseline",
                      fmtDouble(row.thr, 2),
                      std::to_string(res.compute),
                      std::to_string(res.stall),
                      std::to_string(res.total()),
                      fmtDouble(static_cast<double>(res.total()) / norm,
                                3)});
        if (row.ruleAfter)
            table.addRule();
    }
    std::printf("%s\n", table.render().c_str());

    // Paper-claim summary at the reference point LRB=1, LMB=1. The
    // needed points are rows of the grid above: find them by key.
    auto find = [&](int clusters, const char *sched,
                    double thr) -> const harness::SuiteResult & {
        for (std::size_t i = 0; i < rows.size(); ++i) {
            const Row &row = rows[i];
            if (row.machine.nClusters == clusters && row.lrb == 1 &&
                row.lmb == 1 && row.thr == thr &&
                row.sched == std::string(sched))
                return results[i];
        }
        mvp_fatal("figure grid is missing a summary point");
    };
    std::printf("checks (LRB=1, LMB=1):\n");
    for (int clusters : {2, 4}) {
        const auto &rb = find(clusters, "baseline", 0.0);
        const auto &rr = find(clusters, "rmca", 0.0);
        const auto &rr1 = find(clusters, "rmca", 1.0);
        std::printf("  %d-cluster thr=0.00: RMCA/Baseline = %.3f "
                    "(<= 1 expected), stall share = %.1f%% "
                    "(~0 expected), thr 1.00 -> 0.00 stall %.0f%% -> "
                    "%.0f%%\n",
                    clusters,
                    static_cast<double>(rr.total()) /
                        static_cast<double>(rb.total()),
                    100.0 * static_cast<double>(rr.stall) /
                        static_cast<double>(rr.total()),
                    100.0 * static_cast<double>(rr1.stall) /
                        static_cast<double>(rr1.total()),
                    100.0 * static_cast<double>(rr.stall) /
                        static_cast<double>(rr.total()));
    }
    return 0;
}
