/**
 * @file
 * Cross-cutting properties over the whole pipeline, swept across
 * workloads, machines, schedulers and thresholds:
 *
 *  - every schedule validates and respects mII;
 *  - the simulator's compute cycles equal the paper's closed form
 *    NTIMES * (NITER + SC - 1) * II, and op counts are exact;
 *  - VLIW expansion contains exactly SC instances of every operation;
 *  - everything is bit-deterministic run-to-run;
 *  - the schedule validator catches every class of corruption
 *    (dependence, FU, bus, comm, register-pressure violations).
 */

#include <gtest/gtest.h>

#include "cme/solver.hh"
#include "ddg/ddg.hh"
#include "ir/builder.hh"
#include "machine/presets.hh"
#include "sched/scheduler.hh"
#include "sim/simulator.hh"
#include "vliw/kernel.hh"
#include "workloads/workloads.hh"

namespace mvp
{
namespace
{

struct PipelineCase
{
    std::string bench;
    std::size_t loop_index;
    int clusters;
    bool rmca;
    double threshold;

    std::string name() const
    {
        return bench + "_" + std::to_string(loop_index) + "_" +
               std::to_string(clusters) + "c_" +
               (rmca ? "rmca" : "base") + "_t" +
               std::to_string(static_cast<int>(threshold * 100));
    }
};

class PipelineProperty : public ::testing::TestWithParam<PipelineCase>
{
};

TEST_P(PipelineProperty, EndToEndInvariants)
{
    const auto &param = GetParam();
    const auto bench = workloads::benchmarkByName(param.bench);
    ASSERT_LT(param.loop_index, bench.loops.size());
    const auto &nest = bench.loops[param.loop_index];
    const auto machine = makeConfig(param.clusters);
    const auto graph = ddg::Ddg::build(nest, machine);
    cme::CmeAnalysis cme(nest);

    sched::SchedulerOptions opt;
    opt.memoryAware = param.rmca;
    opt.missThreshold = param.threshold;
    opt.locality = &cme;
    auto r = sched::ClusteredModuloScheduler(graph, machine, opt).run();
    ASSERT_TRUE(r.ok) << r.error;

    // 1. Static legality.
    EXPECT_EQ(r.schedule.validate(graph, machine), "");
    EXPECT_GE(r.schedule.ii(), r.stats.mii);
    for (int ml : r.schedule.maxLive())
        EXPECT_LE(ml, machine.regsPerCluster);

    // 2. The NCYCLE_compute closed form (§2.2).
    const auto sim = sim::simulateLoop(graph, r.schedule, machine);
    const Cycle expected =
        nest.outerExecutions() *
        (nest.innerTripCount() + r.schedule.stageCount() - 1) *
        r.schedule.ii();
    EXPECT_EQ(sim.computeCycles, expected);
    EXPECT_EQ(sim.opsExecuted,
              static_cast<std::int64_t>(nest.size()) *
                  nest.innerTripCount() * nest.outerExecutions());
    EXPECT_EQ(sim.memAccesses,
              static_cast<std::int64_t>(nest.memoryOps().size()) *
                  nest.innerTripCount() * nest.outerExecutions());

    // 3. VLIW expansion: SC instances of every op.
    const auto img =
        vliw::KernelImage::generate(graph, r.schedule, machine);
    const int sc = r.schedule.stageCount();
    std::vector<int> instances(nest.size(), 0);
    auto count_block = [&](const std::vector<vliw::VliwInstr> &block) {
        for (const auto &instr : block)
            for (const auto &cw : instr.clusters)
                for (const auto &units : cw.fu)
                    for (const auto &slot : units)
                        if (!slot.isNop())
                            ++instances[static_cast<std::size_t>(
                                slot.op)];
    };
    count_block(img.prologue());
    count_block(img.kernel());
    count_block(img.epilogue());
    for (std::size_t v = 0; v < nest.size(); ++v)
        EXPECT_EQ(instances[v], sc) << "op " << v;

    // 4. Determinism.
    auto r2 = sched::ClusteredModuloScheduler(graph, machine, opt).run();
    ASSERT_TRUE(r2.ok);
    EXPECT_EQ(r2.schedule.ii(), r.schedule.ii());
    for (std::size_t v = 0; v < nest.size(); ++v) {
        EXPECT_EQ(r2.schedule.placed(static_cast<OpId>(v)).time,
                  r.schedule.placed(static_cast<OpId>(v)).time);
        EXPECT_EQ(r2.schedule.placed(static_cast<OpId>(v)).cluster,
                  r.schedule.placed(static_cast<OpId>(v)).cluster);
    }
    const auto sim2 = sim::simulateLoop(graph, r2.schedule, machine);
    EXPECT_EQ(sim2.totalCycles(), sim.totalCycles());
}

std::vector<PipelineCase>
pipelineCases()
{
    std::vector<PipelineCase> cases;
    // Two loops from each suite; alternate scheduler/threshold/machine
    // combinations so the sweep stays fast but covers the space.
    int salt = 0;
    for (const auto &name : workloads::benchmarkNames()) {
        for (std::size_t li : {0u, 2u}) {
            const int clusters = (salt % 2 == 0) ? 2 : 4;
            const bool rmca = (salt / 2) % 2 == 0;
            const double thr = (salt % 3 == 0) ? 0.0
                               : (salt % 3 == 1) ? 0.25
                                                 : 1.0;
            cases.push_back({name, li, clusters, rmca, thr});
            ++salt;
        }
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, PipelineProperty,
                         ::testing::ValuesIn(pipelineCases()),
                         [](const auto &info) {
                             return info.param.name();
                         });

// ------------------------------------------- validator mutation tests

struct Fixture
{
    ir::LoopNest nest;
    MachineConfig machine;
    std::unique_ptr<ddg::Ddg> graph;
    sched::ModuloSchedule schedule;

    Fixture()
        : nest(makeNest()), machine(makeTwoCluster())
    {
        graph = std::make_unique<ddg::Ddg>(
            ddg::Ddg::build(nest, machine));
        auto r = sched::scheduleBaseline(*graph, machine);
        EXPECT_TRUE(r.ok);
        schedule = std::move(r.schedule);
        EXPECT_EQ(schedule.validate(*graph, machine), "");
    }

    static ir::LoopNest makeNest()
    {
        using namespace mvp::ir;
        LoopNestBuilder b("mutate");
        b.loop("i", 0, 64);
        const auto A = b.arrayAt("A", {66}, 0x10000);
        const auto B = b.arrayAt("B", {66}, 0x12000);
        const auto la = b.load(A, {affineVar(0)}, "la");
        const auto lb = b.load(B, {affineVar(0, 1, 1)}, "lb");
        const auto m = b.op(Opcode::FMul, {use(la), use(lb)}, "m");
        b.store(A, {affineVar(0)}, use(m), "s");
        return b.build();
    }
};

TEST(ValidatorMutation, DependenceViolationCaught)
{
    Fixture f;
    // Pull the consumer of the loads before them.
    f.schedule.placed(2).time = 0;
    const std::string err = f.schedule.validate(*f.graph, f.machine);
    EXPECT_NE(err.find("->"), std::string::npos);
}

TEST(ValidatorMutation, MissingCommCaught)
{
    Fixture f;
    if (f.schedule.comms().empty())
        GTEST_SKIP() << "schedule needed no communication";
    f.schedule.comms().clear();
    const std::string err = f.schedule.validate(*f.graph, f.machine);
    EXPECT_NE(err.find("without a comm"), std::string::npos);
}

TEST(ValidatorMutation, FuOversubscriptionCaught)
{
    Fixture f;
    // Force both loads into the same cluster/slot plus the store: 3 MEM
    // ops in one slot of a 2-MEM cluster.
    auto &p0 = f.schedule.placed(0);
    auto &p1 = f.schedule.placed(1);
    auto &p3 = f.schedule.placed(3);
    p1.cluster = p0.cluster;
    p1.time = p0.time;
    p3.cluster = p0.cluster;
    p3.time = p0.time;
    const std::string err = f.schedule.validate(*f.graph, f.machine);
    EXPECT_NE(err.find("oversubscribes"), std::string::npos);
}

TEST(ValidatorMutation, EarlyCommCaught)
{
    Fixture f;
    if (f.schedule.comms().empty())
        GTEST_SKIP() << "schedule needed no communication";
    f.schedule.comms()[0].xferStart = -5;
    const std::string err = f.schedule.validate(*f.graph, f.machine);
    EXPECT_NE(err.find("before the value is produced"),
              std::string::npos);
}

TEST(ValidatorMutation, DoubleBookedBusCaught)
{
    Fixture f;
    if (f.schedule.comms().empty())
        GTEST_SKIP() << "schedule needed no communication";
    // Duplicate the comm onto the same bus and slot for a different
    // producer (op 1).
    auto copy = f.schedule.comms()[0];
    copy.producer = copy.producer == 0 ? 1 : 0;
    copy.from = f.schedule.placed(copy.producer).cluster;
    copy.to = copy.from == 0 ? 1 : 0;
    copy.xferStart =
        f.schedule.placed(copy.producer).time + 1000;   // same slot mod?
    // Align modulo slots with the original reservation.
    copy.xferStart = f.schedule.comms()[0].xferStart + f.schedule.ii();
    f.schedule.comms().push_back(copy);
    const std::string err = f.schedule.validate(*f.graph, f.machine);
    EXPECT_NE(err.find("double-booked"), std::string::npos);
}

TEST(ValidatorMutation, RegisterOverflowCaught)
{
    Fixture f;
    f.schedule.setMaxLive({999, 1});
    const std::string err = f.schedule.validate(*f.graph, f.machine);
    EXPECT_NE(err.find("registers"), std::string::npos);
}

TEST(ValidatorMutation, BadClusterCaught)
{
    Fixture f;
    f.schedule.placed(0).cluster = 7;
    const std::string err = f.schedule.validate(*f.graph, f.machine);
    EXPECT_NE(err.find("invalid cluster"), std::string::npos);
}

} // namespace
} // namespace mvp
