/**
 * @file
 * Data dependence graph of an innermost loop body, the input to the
 * modulo schedulers.
 *
 * Nodes are the body operations; edges carry a latency and an
 * innermost-loop dependence distance (omega). A modulo schedule with
 * initiation interval II is legal when for every edge u -> v
 *
 *     time(v) - time(u) >= latency(u->v) - II * distance(u->v).
 */

#ifndef MVP_DDG_DDG_HH
#define MVP_DDG_DDG_HH

#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "ddg/memdep.hh"
#include "ir/loop.hh"
#include "machine/machine.hh"

namespace mvp::ddg
{

/** Classes of dependence edges. */
enum class EdgeKind
{
    RegFlow,    ///< register dataflow (producer -> consumer)
    MemFlow,    ///< store -> load, same location
    MemAnti,    ///< load -> store, same location
    MemOutput,  ///< store -> store, same location
};

/** Printable name of an edge kind. */
std::string_view edgeKindName(EdgeKind kind);

/** One dependence edge. */
struct DdgEdge
{
    OpId src = INVALID_ID;
    OpId dst = INVALID_ID;
    Cycle latency = 0;
    int distance = 0;    ///< innermost-loop omega (>= 0)
    EdgeKind kind = EdgeKind::RegFlow;

    /** True for register dataflow edges (the ones buses transport). */
    bool isRegFlow() const { return kind == EdgeKind::RegFlow; }
};

/**
 * Per-operation latency overrides, used when the RMCA scheduler promotes
 * a load to the cache-miss latency: every RegFlow edge leaving the op
 * adopts the override.
 */
using LatencyOverrides = std::unordered_map<OpId, Cycle>;

/**
 * The data dependence graph.
 */
class Ddg
{
  public:
    /**
     * Build the DDG of @p nest under @p machine 's operation latencies.
     *
     * Register edges come from the operand lists; memory edges from the
     * affine dependence test (exact for uniformly generated pairs,
     * conservative serialisation otherwise).
     */
    static Ddg build(const ir::LoopNest &nest, const MachineConfig &machine);

    /** The underlying loop nest. */
    const ir::LoopNest &loop() const { return *nest_; }

    /** Number of nodes (== number of body operations). */
    std::size_t size() const { return n_; }

    /** All edges. */
    const std::vector<DdgEdge> &edges() const { return edges_; }

    /** Indices into edges() of the edges leaving @p op. */
    const std::vector<int> &outEdges(OpId op) const;

    /** Indices into edges() of the edges entering @p op. */
    const std::vector<int> &inEdges(OpId op) const;

    /** The machine-model hit latency recorded for @p op 's results. */
    Cycle opLatency(OpId op) const;

    /**
     * Recurrence-constrained minimum initiation interval: the smallest II
     * with no positive-weight cycle under weights latency - II*distance.
     * Returns 1 for acyclic graphs.
     */
    Cycle recMii() const;

    /**
     * True when @p ii admits a legal schedule as far as recurrences are
     * concerned, with optional per-op out-latency overrides (used to ask
     * "may this load adopt the miss latency without raising the II?").
     */
    bool feasibleII(Cycle ii,
                    const LatencyOverrides &overrides = {}) const;

    /**
     * feasibleII with a dense override table: override_lat[op] >= 0
     * replaces the out-latency of op's register-flow edges, negative
     * entries mean "no override". The scheduler's inner loop uses this
     * form to probe miss-latency promotion without building a map per
     * probe.
     */
    bool feasibleII(Cycle ii,
                    const std::vector<Cycle> &override_lat) const;

    /**
     * Strongly connected components (Tarjan). Components are returned in
     * reverse topological order; singleton components without a self-loop
     * are included.
     */
    const std::vector<std::vector<OpId>> &sccs() const;

    /** Component index of @p op in sccs(). */
    int sccOf(OpId op) const;

    /** True when @p op lies on some dependence cycle. */
    bool inRecurrence(OpId op) const;

    /**
     * RecMII restricted to one component of sccs() (1 for trivial
     * components).
     */
    Cycle sccRecMii(int scc_index) const;

    /** ASAP/ALAP times at a given II (Bellman-Ford longest paths). */
    struct TimeBounds
    {
        std::vector<Cycle> asap;
        std::vector<Cycle> alap;
        Cycle criticalPath = 0;

        /** Scheduling freedom of a node. */
        Cycle mobility(OpId op) const
        {
            return alap[static_cast<std::size_t>(op)] -
                   asap[static_cast<std::size_t>(op)];
        }

        /** Longest path from the node to any sink. */
        Cycle height(OpId op) const
        {
            return criticalPath - alap[static_cast<std::size_t>(op)];
        }

        /** Longest path from any source to the node (== ASAP). */
        Cycle depth(OpId op) const
        {
            return asap[static_cast<std::size_t>(op)];
        }
    };

    /**
     * Compute ASAP/ALAP under weights latency - ii*distance. Requires
     * feasibleII(ii).
     */
    TimeBounds timeBounds(Cycle ii) const;

    /**
     * timeBounds into a caller-owned result, reusing its vectors'
     * capacity (the scheduler keeps one thread-local TimeBounds and
     * recomputes it once per scheduled loop without reallocating).
     */
    void timeBounds(Cycle ii, TimeBounds &out) const;

    /** Graphviz-free textual dump for debugging. */
    std::string toString() const;

  private:
    Ddg() = default;

    void addEdge(DdgEdge edge);
    void computeSccs() const;

    const ir::LoopNest *nest_ = nullptr;
    std::size_t n_ = 0;
    std::vector<DdgEdge> edges_;
    std::vector<std::vector<int>> out_;
    std::vector<std::vector<int>> in_;
    std::vector<Cycle> op_latency_;

    mutable bool sccs_valid_ = false;
    mutable std::vector<std::vector<OpId>> sccs_;
    mutable std::vector<int> scc_of_;
    mutable std::vector<bool> in_recurrence_;
};

} // namespace mvp::ddg

#endif // MVP_DDG_DDG_HH
