/**
 * @file
 * Affine index expressions and array references.
 *
 * An array reference is affine when every dimension's index is a linear
 * function of the loop induction variables (footnote 1 of the paper);
 * the Cache Miss Equations framework requires this property.
 */

#ifndef MVP_IR_AFFINE_HH
#define MVP_IR_AFFINE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace mvp::ir
{

/**
 * A linear expression sum(coeffs[d] * iv[d]) + constant over the
 * induction variables of a loop nest (index d = 0 is the outermost loop).
 */
struct AffineExpr
{
    /** One coefficient per loop in the nest (missing entries are 0). */
    std::vector<std::int64_t> coeffs;

    /** Constant additive term. */
    std::int64_t constant = 0;

    /** Evaluate at the given induction-variable values. */
    std::int64_t eval(const std::vector<std::int64_t> &ivs) const;

    /** True when every coefficient is zero. */
    bool isConstant() const;

    /** Coefficient for loop @p depth (0 when beyond stored size). */
    std::int64_t coeff(std::size_t depth) const;

    /** Human-readable rendering, e.g. "2*i1 + 3". */
    std::string toString() const;

    bool operator==(const AffineExpr &other) const;
};

/** Build an AffineExpr with a single unit coefficient at @p depth. */
AffineExpr affineVar(std::size_t depth, std::int64_t coeff = 1,
                     std::int64_t constant = 0);

/** Build a constant AffineExpr. */
AffineExpr affineConst(std::int64_t constant);

/**
 * An affine reference to one array: one index expression per array
 * dimension, row-major linearisation.
 */
struct AffineRef
{
    /** Referenced array. */
    ArrayId array = INVALID_ID;

    /** One index expression per array dimension (outer dim first). */
    std::vector<AffineExpr> index;

    /**
     * True when both refs address the same array with identical
     * coefficient vectors (they differ only in constants): the
     * "uniformly generated" condition under which group reuse exists.
     */
    bool uniformlyGeneratedWith(const AffineRef &other) const;

    bool operator==(const AffineRef &other) const;
};

} // namespace mvp::ir

#endif // MVP_IR_AFFINE_HH
