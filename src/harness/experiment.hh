/**
 * @file
 * Experiment harness: prepares every workload loop once (DDG + CME
 * analysis bound to a stable LoopNest) and runs (machine, scheduler,
 * threshold) configurations over the whole suite, reporting the paper's
 * metric — cycles executing modulo-scheduled loops, split into
 * NCYCLE_compute and NCYCLE_stall and normalised to the unified
 * configuration.
 */

#ifndef MVP_HARNESS_EXPERIMENT_HH
#define MVP_HARNESS_EXPERIMENT_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cme/solver.hh"
#include "ddg/ddg.hh"
#include "machine/machine.hh"
#include "sched/scheduler.hh"
#include "sim/simulator.hh"
#include "workloads/workloads.hh"

namespace mvp::harness
{

/** Scheduler selector (shorthand for the two heuristic backends). */
enum class SchedKind { Baseline, Rmca };

/** Printable name. */
std::string_view schedKindName(SchedKind kind);

/** One experiment point. */
struct RunConfig
{
    MachineConfig machine;
    SchedKind sched = SchedKind::Baseline;
    double threshold = 1.0;

    /**
     * Scheduler backend by registry name ("baseline", "rmca", "exact",
     * "verify", or anything registered at runtime). Empty = derive
     * from the SchedKind shorthand above; when set, it wins.
     */
    std::string backend;

    /** Node budget forwarded to search-based backends. */
    std::int64_t searchBudget = sched::DEFAULT_SEARCH_BUDGET;
};

/** The registry name runLoop() will resolve @p config to. */
std::string backendName(const RunConfig &config);

/** Per-loop outcome. */
struct LoopRunResult
{
    std::string benchmark;
    std::string loop;
    sched::ScheduleResult sched;
    sim::SimResult sim;
};

/** Whole-suite outcome. */
struct SuiteResult
{
    Cycle compute = 0;
    Cycle stall = 0;
    std::vector<LoopRunResult> loops;

    /** Per-benchmark (compute, stall) sums. */
    std::map<std::string, std::pair<Cycle, Cycle>> perBenchmark;

    Cycle total() const { return compute + stall; }
};

/**
 * All workload loops prepared once: stable LoopNest storage plus the
 * DDG and a shared CME analysis per loop. The CME memoisation then
 * amortises across every configuration of a sweep.
 */
class Workbench
{
  public:
    /** One prepared loop. */
    struct Entry
    {
        std::string benchmark;
        ir::LoopNest nest;
        std::unique_ptr<ddg::Ddg> ddg;
        std::unique_ptr<cme::CmeAnalysis> cme;
    };

    /**
     * Prepare every loop of every suite (or of @p only, when given).
     * Operation latencies are identical in all Table-1 machines, so one
     * DDG per loop serves the whole sweep.
     */
    explicit Workbench(const std::vector<std::string> &only = {});

    const std::vector<std::unique_ptr<Entry>> &entries() const
    {
        return entries_;
    }

    /** Benchmarks present (paper order). */
    std::vector<std::string> benchmarks() const;

  private:
    std::vector<std::unique_ptr<Entry>> entries_;
};

/** Schedule + simulate one prepared loop under one configuration. */
LoopRunResult runLoop(Workbench::Entry &entry, const RunConfig &config,
                      sim::SimParams sim_params = {});

/** Schedule + simulate the whole workbench under one configuration. */
SuiteResult runSuite(Workbench &bench, const RunConfig &config,
                     sim::SimParams sim_params = {});

} // namespace mvp::harness

#endif // MVP_HARNESS_EXPERIMENT_HH
