#include "sched/backend.hh"

#include <memory>
#include <mutex>

#include "cme/provider.hh"
#include "common/logging.hh"
#include "harness/driver.hh"
#include "sched/exact/bnb.hh"
#include "sched/exact/portfolio.hh"
#include "sched/sat/sat.hh"

namespace mvp::sched
{

namespace
{

/**
 * Bind the named locality provider to the loop when @p opt needs a
 * locality analysis but carries none. Returns the owning pointer the
 * caller must keep alive for the schedule call (nullptr when @p opt
 * already has an analysis or does not need one).
 */
std::unique_ptr<cme::LocalityAnalysis>
bindFallbackLocality(SchedulerOptions &opt, const ddg::Ddg &graph)
{
    if (opt.locality != nullptr ||
        (!opt.memoryAware && opt.missThreshold >= 1.0))
        return nullptr;
    auto bound = cme::LocalityRegistry::instance().bind(
        opt.localityProvider.empty() ? "cme" : opt.localityProvider,
        graph.loop());
    opt.locality = bound.get();
    return bound;
}

/** Map the generic scheduler options onto the exact engine's knobs. */
exact::ExactOptions
exactOptionsFrom(const SchedulerOptions &options)
{
    exact::ExactOptions bnb;
    bnb.maxII = options.maxII;
    bnb.nodeBudget = options.searchBudget;
    bnb.timeBudgetMs = options.timeBudgetMs;
    bnb.tiebreakBudget = options.tiebreakBudget;
    return bnb;
}

/** Map the generic scheduler options onto the SAT engine's knobs. */
SatOptions
satOptionsFrom(const SchedulerOptions &options)
{
    SatOptions sat;
    sat.maxII = options.maxII;
    sat.conflictBudget = options.satConflictBudget;
    sat.timeBudgetMs = options.timeBudgetMs;
    return sat;
}

/** The two heuristic engines share one wrapper; only memoryAware
 * differs. */
class HeuristicBackend : public SchedulerBackend
{
  public:
    HeuristicBackend(std::string_view name, bool memory_aware)
        : name_(name), memory_aware_(memory_aware)
    {
    }

    std::string_view name() const override { return name_; }

    ScheduleResult schedule(const ddg::Ddg &graph,
                            const MachineConfig &machine,
                            const SchedulerOptions &options,
                            SchedContext &ctx) const override
    {
        SchedulerOptions opt = options;
        opt.memoryAware = memory_aware_;
        const auto bound = bindFallbackLocality(opt, graph);
        return ClusteredModuloScheduler(graph, machine, opt).run(ctx);
    }

  private:
    std::string_view name_;
    bool memory_aware_;
};

/** The serial branch and bound, registered as "exact" and its
 * engine-explicit alias "bnb" (the gap-study engine sweep addresses
 * the two exact families as bnb vs sat). */
class ExactBackend : public SchedulerBackend
{
  public:
    explicit ExactBackend(std::string_view name) : name_(name) {}

    std::string_view name() const override { return name_; }

    ScheduleResult schedule(const ddg::Ddg &graph,
                            const MachineConfig &machine,
                            const SchedulerOptions &options,
                            SchedContext &ctx) const override
    {
        return exact::scheduleExact(graph, machine,
                                    exactOptionsFrom(options), ctx);
    }

  private:
    std::string_view name_;
};

/**
 * The SAT exact engine (sched/sat/): CDCL over the placement encoding,
 * certifying the same IIs as the branch and bound — the schedule
 * itself may differ (no register-pressure tiebreak), the II, lower
 * bound and certificate agree.
 */
class SatBackend : public SchedulerBackend
{
  public:
    std::string_view name() const override { return "sat"; }

    ScheduleResult schedule(const ddg::Ddg &graph,
                            const MachineConfig &machine,
                            const SchedulerOptions &options,
                            SchedContext &ctx) const override
    {
        return scheduleSatExact(graph, machine, satOptionsFrom(options),
                                ctx);
    }
};

/**
 * The exact engine on the persistent worker pool (exact/portfolio.hh):
 * II-probe racing plus depth-1 subtree splitting, with a final serial
 * re-derivation keeping placements byte-identical at any job count.
 *
 * The pool is process-wide and lazy: spawned on the first portfolio
 * schedule, resized when searchJobs changes, parked between calls (the
 * whole point of racing on a *persistent* pool — a gap study over
 * hundreds of loops pays thread startup once). ParallelDriver::run is
 * not reentrant, so one portfolio schedule runs at a time; concurrent
 * callers serialise on the mutex.
 */
class PortfolioBackend : public SchedulerBackend
{
  public:
    std::string_view name() const override { return "portfolio"; }

    ScheduleResult schedule(const ddg::Ddg &graph,
                            const MachineConfig &machine,
                            const SchedulerOptions &options,
                            SchedContext &ctx) const override
    {
        const int jobs = options.searchJobs > 0
                             ? options.searchJobs
                             : harness::defaultJobs();
        static std::mutex mu;
        static std::unique_ptr<harness::ParallelDriver> pool;
        const std::lock_guard<std::mutex> lock(mu);
        if (pool == nullptr || pool->jobs() != jobs)
            pool = std::make_unique<harness::ParallelDriver>(jobs);
        return exact::scheduleExactPortfolio(
            graph, machine, exactOptionsFrom(options), *pool, ctx);
    }
};

/**
 * Runs the rmca heuristic and the exact scheduler on the same loop and
 * reports the II optimality gap of the heuristic. The heuristic
 * schedule is the one returned (verify is a *measurement* mode, not a
 * better scheduler); the gap fields land in the stats.
 */
class VerifyBackend : public SchedulerBackend
{
  public:
    std::string_view name() const override { return "verify"; }

    ScheduleResult schedule(const ddg::Ddg &graph,
                            const MachineConfig &machine,
                            const SchedulerOptions &options,
                            SchedContext &ctx) const override
    {
        SchedulerOptions heur_opt = options;
        heur_opt.memoryAware = true;
        const auto bound = bindFallbackLocality(heur_opt, graph);
        ScheduleResult res =
            ClusteredModuloScheduler(graph, machine, heur_opt).run(ctx);

        // The certifying engine is pluggable ("exact" serial search or
        // "portfolio" on the worker pool); "verify" itself falls back
        // to "exact" rather than recursing.
        const std::string &inner =
            options.exactBackend == "verify" || options.exactBackend.empty()
                ? "exact"
                : options.exactBackend;
        const ScheduleResult ex =
            scheduleWithBackend(inner, graph, machine, options, ctx);

        res.stats.searchNodes = ex.stats.searchNodes;
        res.stats.budgetExhausted = ex.stats.budgetExhausted;
        res.stats.iiLowerBound = ex.stats.iiLowerBound;
        if (ex.ok) {
            res.stats.gapKnown = true;
            res.stats.exactII = ex.schedule.ii();
            res.stats.provenOptimal = ex.stats.provenOptimal;
            if (res.ok)
                res.stats.iiGap =
                    res.schedule.ii() - ex.schedule.ii();
        }
        return res;
    }
};

} // namespace

BackendRegistry::BackendRegistry()
{
    add("baseline", [] {
        return std::make_unique<HeuristicBackend>("baseline", false);
    });
    add("rmca", [] {
        return std::make_unique<HeuristicBackend>("rmca", true);
    });
    add("exact",
        [] { return std::make_unique<ExactBackend>("exact"); });
    add("bnb", [] { return std::make_unique<ExactBackend>("bnb"); });
    add("sat", [] { return std::make_unique<SatBackend>(); });
    add("portfolio",
        [] { return std::make_unique<PortfolioBackend>(); });
    add("verify", [] { return std::make_unique<VerifyBackend>(); });
}

BackendRegistry &
BackendRegistry::instance()
{
    static BackendRegistry registry;
    return registry;
}

void
BackendRegistry::add(std::string name, BackendFactory factory)
{
    table_.add(std::move(name), std::move(factory));
}

bool
BackendRegistry::has(const std::string &name) const
{
    return table_.has(name);
}

std::unique_ptr<SchedulerBackend>
BackendRegistry::create(const std::string &name) const
{
    return table_.get(name, "scheduler backend")();
}

std::vector<std::string>
BackendRegistry::names() const
{
    return table_.names();
}

ScheduleResult
scheduleWithBackend(const std::string &backend_name,
                    const ddg::Ddg &graph, const MachineConfig &machine,
                    const SchedulerOptions &options, SchedContext &ctx)
{
    return BackendRegistry::instance()
        .create(backend_name)
        ->schedule(graph, machine, options, ctx);
}

ScheduleResult
scheduleWithBackend(const std::string &backend_name,
                    const ddg::Ddg &graph, const MachineConfig &machine,
                    const SchedulerOptions &options)
{
    SchedContext ctx;
    return scheduleWithBackend(backend_name, graph, machine, options,
                               ctx);
}

} // namespace mvp::sched
