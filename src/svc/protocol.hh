/**
 * @file
 * Request payloads and reply payloads of the scheduling service.
 *
 * A request payload is plain text: optional `config KEY VALUE` lines
 * followed by a scenario (one `loop` block and one `machine` block,
 * text/format.hh grammar, either order, `#` comments anywhere). The
 * config keys, all optional:
 *
 *     config backend NAME           scheduler backend (default rmca)
 *     config locality NAME          locality provider (default cme)
 *     config threshold X            RMCA miss threshold (default 0.25)
 *     config time-budget-ms N       exact wall budget (default as repo)
 *     config node-budget N          deprecated node cap (default 0)
 *     config exact-backend NAME     verify engine (default exact)
 *
 * The cache key is the *canonical* rendering of the parsed request:
 * the config block reprinted in fixed order with every default made
 * explicit, then printScenario() of the parsed scenario. Any two
 * payloads that parse to the same request — whitespace, comments,
 * block order, option order, redundant defaults — share one key, so
 * the service's content-addressed cache returns byte-identical
 * replies for all of them.
 *
 * A reply payload is one `status` line followed by `FIELD VALUE`
 * lines: the schedule statistics, the optimality-gap certificate, the
 * per-op placements and the inter-cluster transfers. Doubles are
 * rendered with %.17g so re-rendering a parsed reply is lossless. An
 * error reply is `status error` plus an `error` line. Reply payloads
 * are pure functions of the cache key; the service caches them
 * verbatim.
 */

#ifndef MVP_SVC_PROTOCOL_HH
#define MVP_SVC_PROTOCOL_HH

#include <cstdint>
#include <string>

#include "sched/scheduler.hh"
#include "text/format.hh"

namespace mvp::svc
{

/** Per-request scheduler configuration (the `config` lines). */
struct RequestOptions
{
    std::string backend = "rmca";
    std::string locality = "cme";
    double threshold = 0.25;
    std::int64_t timeBudgetMs = sched::DEFAULT_TIME_BUDGET_MS;
    std::int64_t nodeBudget = 0;
    std::string exactBackend = "exact";
};

/** One parsed request. */
struct Request
{
    /** Frame id (client-chosen token); never part of the cache key. */
    std::string id;

    /**
     * Nonempty when the payload failed to parse; the other fields are
     * then meaningless and the reply is an uncached error payload.
     */
    std::string error;

    RequestOptions options;
    text::ScenarioText scenario;

    /**
     * The verbatim payload bytes as they arrived (empty on parse
     * error). After the reply is published under the canonical key,
     * the service also publishes raw -> reply in the zero-parse lane
     * so the next byte-identical payload skips parsing entirely.
     */
    std::string raw;

    /** Canonical cache key (empty on parse error). */
    std::string key;

    /** printLoop() of the parsed loop — the loop-context key. */
    std::string loopKey;

    /** printMachine() of the parsed machine — the DDG cache key. */
    std::string machineKey;
};

/**
 * Parse one request payload. Never exits the process: parser fatals
 * are captured (FatalScope) into Request::error, so a malformed
 * payload costs its sender one error reply, not the server.
 */
Request parseRequest(const std::string &payload,
                     const std::string &origin = "<request>");

/**
 * The canonical `config` block: fixed key order, every default
 * explicit, doubles via %.17g. The cache key is this text, a blank
 * line, then printScenario().
 */
std::string canonicalOptionsText(const RequestOptions &options);

/** Render the reply payload for a scheduling result. */
std::string renderReply(const Request &request,
                        const sched::ScheduleResult &result);

/** Render an error reply payload (newlines flattened to spaces). */
std::string renderErrorReply(const std::string &message);

} // namespace mvp::svc

#endif // MVP_SVC_PROTOCOL_HH
