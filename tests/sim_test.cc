/**
 * @file
 * Tests for the lockstep simulator: the NCYCLE decomposition of §2.2,
 * zero-stall execution when latencies are honoured, stalls from cache
 * misses, the effect of binding prefetching, and stat consistency.
 */

#include <gtest/gtest.h>

#include "cme/solver.hh"
#include "ddg/ddg.hh"
#include "ir/builder.hh"
#include "machine/presets.hh"
#include "sched/scheduler.hh"
#include "sim/simulator.hh"

namespace mvp::sim
{
namespace
{

using namespace mvp::ir;

/** Loop whose working set is resident: no stalls after warm-up. */
LoopNest
residentLoop()
{
    LoopNestBuilder b("resident");
    b.loop("r", 0, 8);
    b.loop("i", 0, 128);
    const auto A = b.arrayAt("A", {128}, 0x10000);   // 512 B
    const auto l = b.load(A, {affineVar(1)}, "l");
    const auto m = b.op(Opcode::FMul, {use(l), liveIn()}, "m");
    b.store(A, {affineVar(1)}, use(m), "s");
    return b.build();
}

/** Ping-pong loop: every iteration misses when co-located. */
LoopNest
pingPongLoop()
{
    LoopNestBuilder b("pingpong");
    b.loop("r", 0, 4);
    b.loop("i", 0, 256);
    const auto B = b.arrayAt("B", {256}, 0x10000);
    const auto C = b.arrayAt("C", {256}, 0x12000);
    const auto lb = b.load(B, {affineVar(1)}, "lb");
    const auto lc = b.load(C, {affineVar(1)}, "lc");
    b.op(Opcode::FMul, {use(lb), use(lc)}, "m");
    return b.build();
}

TEST(Simulator, ComputeCyclesMatchFormula)
{
    const auto nest = residentLoop();
    const auto machine = makeUnified();
    const auto g = ddg::Ddg::build(nest, machine);
    const auto r = sched::scheduleBaseline(g, machine);
    ASSERT_TRUE(r.ok);
    const auto res = simulateLoop(g, r.schedule, machine);
    // NCYCLE_compute = NTIMES * (NITER + SC - 1) * II.
    const Cycle expected = 8 * (128 + r.schedule.stageCount() - 1) *
                           r.schedule.ii();
    EXPECT_EQ(res.computeCycles, expected);
    EXPECT_EQ(res.iterations, 8 * 128);
    EXPECT_EQ(res.executions, 8);
}

TEST(Simulator, ResidentLoopStallsOnlyDuringWarmup)
{
    const auto nest = residentLoop();
    const auto machine = makeUnified();
    const auto g = ddg::Ddg::build(nest, machine);
    const auto r = sched::scheduleBaseline(g, machine);
    ASSERT_TRUE(r.ok);
    const auto res = simulateLoop(g, r.schedule, machine);
    // 512B working set = 16 lines: only cold fills (the store to the
    // just-missed line merges into the load's fill and also counts as a
    // local miss).
    EXPECT_EQ(res.memStats.value("memory_fills"), 16);
    EXPECT_EQ(res.memStats.value("local_misses") -
                  res.memStats.value("mshr_merges"),
              16);
    // Each cold miss stalls at most the full miss penalty.
    EXPECT_LE(res.stallCycles, 16 * (machine.missLatency() + 4));
    // The last 7 executions run stall-free, so the stall share stays a
    // small fraction of the total (warm-up only).
    EXPECT_LT(static_cast<double>(res.stallCycles),
              0.25 * static_cast<double>(res.computeCycles));
}

TEST(Simulator, OpAndMemCountsAreExact)
{
    const auto nest = residentLoop();
    const auto machine = makeUnified();
    const auto g = ddg::Ddg::build(nest, machine);
    const auto r = sched::scheduleBaseline(g, machine);
    ASSERT_TRUE(r.ok);
    const auto res = simulateLoop(g, r.schedule, machine);
    EXPECT_EQ(res.opsExecuted, 8 * 128 * 3);
    EXPECT_EQ(res.memAccesses, 8 * 128 * 2);
    EXPECT_EQ(res.memStats.value("loads"), 8 * 128);
    EXPECT_EQ(res.memStats.value("stores"), 8 * 128);
}

TEST(Simulator, PingPongStallsDominateWhenColocated)
{
    const auto nest = pingPongLoop();
    const auto machine = makeUnified();   // one cache: B/C thrash
    const auto g = ddg::Ddg::build(nest, machine);
    const auto r = sched::scheduleBaseline(g, machine);
    ASSERT_TRUE(r.ok);
    const auto res = simulateLoop(g, r.schedule, machine);
    // Both loads miss essentially every iteration.
    EXPECT_GT(res.memStats.value("local_misses"), 4 * 256);
    EXPECT_GT(res.stallCycles, res.computeCycles);
}

TEST(Simulator, MaxExecutionsCapRespected)
{
    const auto nest = residentLoop();
    const auto machine = makeUnified();
    const auto g = ddg::Ddg::build(nest, machine);
    const auto r = sched::scheduleBaseline(g, machine);
    ASSERT_TRUE(r.ok);
    SimParams params;
    params.maxExecutions = 2;
    const auto res = simulateLoop(g, r.schedule, machine, params);
    EXPECT_EQ(res.executions, 2);
    EXPECT_EQ(res.iterations, 2 * 128);
}

TEST(Simulator, BindingPrefetchRemovesStallsWithUnboundedBuses)
{
    // §5.2: with unbounded buses and threshold 0.00, scheduling the
    // likely-missing loads with the miss latency hides nearly all
    // stalls at the cost of compute cycles.
    const auto nest = pingPongLoop();
    const auto machine = withUnboundedBuses(makeTwoCluster(), 1, 1);
    const auto g = ddg::Ddg::build(nest, machine);
    cme::CmeAnalysis cme(nest);

    const auto plain = sched::scheduleBaseline(g, machine, 1.0, &cme);
    const auto eager = sched::scheduleBaseline(g, machine, 0.0, &cme);
    ASSERT_TRUE(plain.ok && eager.ok);

    const auto res_plain = simulateLoop(g, plain.schedule, machine);
    const auto res_eager = simulateLoop(g, eager.schedule, machine);
    EXPECT_LT(res_eager.stallCycles, res_plain.stallCycles / 2);
    EXPECT_LE(res_eager.totalCycles(), res_plain.totalCycles());
}

TEST(Simulator, RmcaAvoidsThePingPongEntirely)
{
    const auto nest = pingPongLoop();
    const auto machine = makeTwoCluster();
    const auto g = ddg::Ddg::build(nest, machine);
    cme::CmeAnalysis cme(nest);

    const auto rmca = sched::scheduleRmca(g, machine, 1.0, cme);
    ASSERT_TRUE(rmca.ok);
    const auto res = simulateLoop(g, rmca.schedule, machine);
    // Split across clusters, each array streams with spatial locality:
    // ~1/8 miss ratio instead of ~100%.
    const auto total_loads = res.memStats.value("loads");
    EXPECT_LT(res.memStats.value("local_misses"), total_loads / 4);
}

TEST(Simulator, MemoryCarriedDependenceStallsOnMiss)
{
    // BLTS pattern: the load consumes last iteration's store. When the
    // store misses, the dependent load must stall (dynamic check).
    LoopNestBuilder b("carried");
    b.loop("r", 0, 2);
    b.loop("i", 1, 257);
    const auto V = b.arrayAt("V", {258}, 0x10000);
    const auto W = b.arrayAt("W", {258}, 0x12000);   // conflicts with V
    const auto vw = b.load(V, {affineVar(1, 1, -1)}, "vw");
    const auto lw = b.load(W, {affineVar(1)}, "lw");
    const auto v = b.op(Opcode::FMul, {use(vw), use(lw)}, "v");
    b.store(V, {affineVar(1)}, use(v), "sv");
    const auto nest = b.build();
    const auto machine = makeUnified();
    const auto g = ddg::Ddg::build(nest, machine);
    const auto r = sched::scheduleBaseline(g, machine);
    ASSERT_TRUE(r.ok);
    const auto res = simulateLoop(g, r.schedule, machine);
    EXPECT_GT(res.stallCycles, 0);
}

TEST(Simulator, StatsCarryAcrossExecutions)
{
    // Cache state persists between the NTIMES executions: the second
    // sweep of a resident array generates no new misses.
    const auto nest = residentLoop();
    const auto machine = makeUnified();
    const auto g = ddg::Ddg::build(nest, machine);
    const auto r = sched::scheduleBaseline(g, machine);
    ASSERT_TRUE(r.ok);
    SimParams one;
    one.maxExecutions = 1;
    const auto first = simulateLoop(g, r.schedule, machine, one);
    const auto all = simulateLoop(g, r.schedule, machine);
    EXPECT_EQ(first.memStats.value("local_misses"),
              all.memStats.value("local_misses"));
}

} // namespace
} // namespace mvp::sim
