#include "sched/backend.hh"

#include <memory>

#include "cme/provider.hh"
#include "common/logging.hh"
#include "sched/exact/bnb.hh"

namespace mvp::sched
{

namespace
{

/**
 * Bind the named locality provider to the loop when @p opt needs a
 * locality analysis but carries none. Returns the owning pointer the
 * caller must keep alive for the schedule call (nullptr when @p opt
 * already has an analysis or does not need one).
 */
std::unique_ptr<cme::LocalityAnalysis>
bindFallbackLocality(SchedulerOptions &opt, const ddg::Ddg &graph)
{
    if (opt.locality != nullptr ||
        (!opt.memoryAware && opt.missThreshold >= 1.0))
        return nullptr;
    auto bound = cme::LocalityRegistry::instance().bind(
        opt.localityProvider.empty() ? "cme" : opt.localityProvider,
        graph.loop());
    opt.locality = bound.get();
    return bound;
}

/** The two heuristic engines share one wrapper; only memoryAware
 * differs. */
class HeuristicBackend : public SchedulerBackend
{
  public:
    HeuristicBackend(std::string_view name, bool memory_aware)
        : name_(name), memory_aware_(memory_aware)
    {
    }

    std::string_view name() const override { return name_; }

    ScheduleResult schedule(const ddg::Ddg &graph,
                            const MachineConfig &machine,
                            const SchedulerOptions &options,
                            SchedContext &ctx) const override
    {
        SchedulerOptions opt = options;
        opt.memoryAware = memory_aware_;
        const auto bound = bindFallbackLocality(opt, graph);
        return ClusteredModuloScheduler(graph, machine, opt).run(ctx);
    }

  private:
    std::string_view name_;
    bool memory_aware_;
};

class ExactBackend : public SchedulerBackend
{
  public:
    std::string_view name() const override { return "exact"; }

    ScheduleResult schedule(const ddg::Ddg &graph,
                            const MachineConfig &machine,
                            const SchedulerOptions &options,
                            SchedContext &ctx) const override
    {
        exact::BnbOptions bnb;
        bnb.maxII = options.maxII;
        bnb.nodeBudget = options.searchBudget;
        return exact::scheduleExact(graph, machine, bnb, ctx);
    }
};

/**
 * Runs the rmca heuristic and the exact scheduler on the same loop and
 * reports the II optimality gap of the heuristic. The heuristic
 * schedule is the one returned (verify is a *measurement* mode, not a
 * better scheduler); the gap fields land in the stats.
 */
class VerifyBackend : public SchedulerBackend
{
  public:
    std::string_view name() const override { return "verify"; }

    ScheduleResult schedule(const ddg::Ddg &graph,
                            const MachineConfig &machine,
                            const SchedulerOptions &options,
                            SchedContext &ctx) const override
    {
        SchedulerOptions heur_opt = options;
        heur_opt.memoryAware = true;
        const auto bound = bindFallbackLocality(heur_opt, graph);
        ScheduleResult res =
            ClusteredModuloScheduler(graph, machine, heur_opt).run(ctx);

        exact::BnbOptions bnb;
        bnb.maxII = options.maxII;
        bnb.nodeBudget = options.searchBudget;
        const ScheduleResult ex =
            exact::scheduleExact(graph, machine, bnb, ctx);

        res.stats.searchNodes = ex.stats.searchNodes;
        res.stats.budgetExhausted = ex.stats.budgetExhausted;
        res.stats.iiLowerBound = ex.stats.iiLowerBound;
        if (ex.ok) {
            res.stats.gapKnown = true;
            res.stats.exactII = ex.schedule.ii();
            res.stats.provenOptimal = ex.stats.provenOptimal;
            if (res.ok)
                res.stats.iiGap =
                    res.schedule.ii() - ex.schedule.ii();
        }
        return res;
    }
};

} // namespace

BackendRegistry::BackendRegistry()
{
    add("baseline", [] {
        return std::make_unique<HeuristicBackend>("baseline", false);
    });
    add("rmca", [] {
        return std::make_unique<HeuristicBackend>("rmca", true);
    });
    add("exact", [] { return std::make_unique<ExactBackend>(); });
    add("verify", [] { return std::make_unique<VerifyBackend>(); });
}

BackendRegistry &
BackendRegistry::instance()
{
    static BackendRegistry registry;
    return registry;
}

void
BackendRegistry::add(std::string name, BackendFactory factory)
{
    table_.add(std::move(name), std::move(factory));
}

bool
BackendRegistry::has(const std::string &name) const
{
    return table_.has(name);
}

std::unique_ptr<SchedulerBackend>
BackendRegistry::create(const std::string &name) const
{
    return table_.get(name, "scheduler backend")();
}

std::vector<std::string>
BackendRegistry::names() const
{
    return table_.names();
}

ScheduleResult
scheduleWithBackend(const std::string &backend_name,
                    const ddg::Ddg &graph, const MachineConfig &machine,
                    const SchedulerOptions &options, SchedContext &ctx)
{
    return BackendRegistry::instance()
        .create(backend_name)
        ->schedule(graph, machine, options, ctx);
}

ScheduleResult
scheduleWithBackend(const std::string &backend_name,
                    const ddg::Ddg &graph, const MachineConfig &machine,
                    const SchedulerOptions &options)
{
    SchedContext ctx;
    return scheduleWithBackend(backend_name, graph, machine, options,
                               ctx);
}

} // namespace mvp::sched
