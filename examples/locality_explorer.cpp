/**
 * @file
 * Using the Cache Miss Equations as a standalone analysis: for one
 * tomcatv loop, enumerate every 2-cluster partition of its memory
 * operations and rank them by predicted misses — then confirm the
 * prediction against the exact trace oracle.
 *
 * This is the analysis the RMCA scheduler performs incrementally; seeing
 * the whole partition space makes it obvious why cluster selection for
 * memory instructions "can dramatically affect the final performance"
 * (Section 3).
 */

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "cme/provider.hh"
#include "cme/stream.hh"
#include "common/strutil.hh"
#include "common/table.hh"
#include "machine/presets.hh"
#include "workloads/workloads.hh"

using namespace mvp;

int
main()
{
    const auto bench = workloads::makeTomcatv();
    const auto &nest = bench.loops[2];   // relax: X/RX/Y/RY read-update
    const auto mem = nest.memoryOps();
    std::printf("loop: %s, %zu memory operations\n%s\n",
                nest.name().c_str(), mem.size(),
                nest.toString().c_str());

    const CacheGeom geom = makeTwoCluster().clusterCacheGeom();

    // Both providers come from the locality registry and share one
    // access-stream cache, so the loop's line streams materialise once
    // for the sampled estimate and the exact trace simulation alike.
    auto streams = std::make_shared<cme::StreamCache>(nest);
    auto &registry = cme::LocalityRegistry::instance();
    const auto cme_analysis = registry.bind("cme", nest, streams);
    const auto oracle_analysis = registry.bind("oracle", nest, streams);
    cme::LocalityAnalysis &cme = *cme_analysis;
    cme::LocalityAnalysis &oracle = *oracle_analysis;

    struct Partition
    {
        unsigned mask;
        double cme_misses;
        double oracle_misses;
    };
    std::vector<Partition> partitions;

    // Every assignment of the memory ops to 2 clusters (up to symmetry).
    const auto n = mem.size();
    for (unsigned mask = 0; mask < (1u << (n - 1)); ++mask) {
        std::vector<OpId> c0;
        std::vector<OpId> c1;
        for (std::size_t i = 0; i < n; ++i)
            ((mask >> i) & 1 ? c1 : c0).push_back(mem[i]);
        const double est = cme.missesPerIteration(c0, geom) +
                           cme.missesPerIteration(c1, geom);
        const double exact = oracle.missesPerIteration(c0, geom) +
                             oracle.missesPerIteration(c1, geom);
        partitions.push_back({mask, est, exact});
    }
    std::sort(partitions.begin(), partitions.end(),
              [](const Partition &a, const Partition &b) {
                  return a.cme_misses < b.cme_misses;
              });

    TextTable table({"cluster 0", "cluster 1", "CME est.", "oracle"});
    table.setTitle("2-cluster partitions of " + nest.name() +
                   " ranked by predicted misses/iteration");
    auto names = [&](bool side, unsigned mask) {
        std::vector<std::string> out;
        for (std::size_t i = 0; i < n; ++i)
            if (((mask >> i) & 1) == static_cast<unsigned>(side))
                out.push_back(nest.op(mem[i]).name);
        return join(out, " ");
    };
    for (std::size_t k = 0; k < partitions.size(); ++k) {
        // Print the best three and the worst three.
        if (k >= 3 && k + 3 < partitions.size())
            continue;
        if (k == 3 && partitions.size() > 6)
            table.addRule();
        const auto &p = partitions[k];
        table.addRow({names(false, p.mask), names(true, p.mask),
                      fmtDouble(p.cme_misses, 3),
                      fmtDouble(p.oracle_misses, 3)});
    }
    std::printf("%s\n", table.render().c_str());

    const auto &best = partitions.front();
    const auto &worst = partitions.back();
    std::printf("best/worst oracle ratio: %.1fx — the cluster "
                "assignment alone changes the\nmiss traffic that much, "
                "before any scheduling happens.\n",
                worst.oracle_misses / std::max(best.oracle_misses, 1e-9));
    return 0;
}
