/**
 * @file
 * hydro2d-like suite: Navier-Stokes astrophysical jet solver.
 *
 * 104.hydro2d advances four conserved quantities (density RO, momenta
 * MU/MV, energy EN) with flux-difference stencils. The loops mix wide
 * multi-array reads (8+ streams competing for the cache), a
 * long-latency divide in the equation of state, and flux updates with
 * group reuse inside each array. RO/EN and MU/MV are 8 KB apart.
 */

#include "workloads/workloads.hh"

#include "ir/builder.hh"

namespace mvp::workloads
{

namespace
{

using namespace mvp::ir;

constexpr std::int64_t N_I = 16;
constexpr std::int64_t N_J = 62;
constexpr std::int64_t DIM_I = N_I + 2;
constexpr std::int64_t DIM_J = N_J + 2;
constexpr Addr BASE = 0x100000;
constexpr Addr STRIDE_8K = 0x2000;

AffineExpr
at(std::size_t depth, std::int64_t ofs)
{
    return affineVar(depth, 1, ofs);
}

/** Equation of state: pressure from density/energy with FDiv. */
LoopNest
loopEos()
{
    LoopNestBuilder b("hydro2d.eos");
    b.loop("i", 1, 1 + N_I);
    b.loop("j", 1, 1 + N_J);
    const auto RO = b.arrayAt("RO", {DIM_I, DIM_J}, BASE);
    const auto EN = b.arrayAt("EN", {DIM_I, DIM_J}, BASE + STRIDE_8K);
    const auto MU = b.arrayAt("MU", {DIM_I, DIM_J}, BASE + 2 * STRIDE_8K);
    const auto PR = b.arrayAt("PR", {DIM_I, DIM_J}, BASE + 3 * STRIDE_8K + 0x980);

    const auto ro = b.load(RO, {at(0, 0), at(1, 0)}, "ro");
    const auto en = b.load(EN, {at(0, 0), at(1, 0)}, "en");
    const auto mu = b.load(MU, {at(0, 0), at(1, 0)}, "mu");

    const auto ke = b.op(Opcode::FMul, {use(mu), use(mu)}, "ke");
    const auto kinetic = b.op(Opcode::FDiv, {use(ke), use(ro)}, "kin");
    const auto internal = b.op(Opcode::FSub, {use(en), use(kinetic)},
                               "int");
    const auto pr = b.op(Opcode::FMul, {use(internal), liveIn()}, "prv");
    b.store(PR, {at(0, 0), at(1, 0)}, use(pr), "spr");
    return b.build();
}

/** X-direction flux differences. */
LoopNest
loopFluxX()
{
    LoopNestBuilder b("hydro2d.fluxx");
    b.loop("i", 1, 1 + N_I);
    b.loop("j", 1, 1 + N_J);
    const auto RO = b.arrayAt("RO", {DIM_I, DIM_J}, BASE);
    const auto MU = b.arrayAt("MU", {DIM_I, DIM_J}, BASE + 2 * STRIDE_8K);
    const auto PR = b.arrayAt("PR", {DIM_I, DIM_J}, BASE + 3 * STRIDE_8K + 0x980);
    const auto FRO =
        b.arrayAt("FRO", {DIM_I, DIM_J}, BASE + 4 * STRIDE_8K);
    const auto FMU =
        b.arrayAt("FMU", {DIM_I, DIM_J}, BASE + 5 * STRIDE_8K + 0x1300);

    const auto mu_e = b.load(MU, {at(0, 0), at(1, 1)}, "mu_e");
    const auto mu_w = b.load(MU, {at(0, 0), at(1, -1)}, "mu_w");
    const auto ro_e = b.load(RO, {at(0, 0), at(1, 1)}, "ro_e");
    const auto ro_w = b.load(RO, {at(0, 0), at(1, -1)}, "ro_w");
    const auto pr_e = b.load(PR, {at(0, 0), at(1, 1)}, "pr_e");
    const auto pr_w = b.load(PR, {at(0, 0), at(1, -1)}, "pr_w");

    const auto dmu = b.op(Opcode::FSub, {use(mu_e), use(mu_w)}, "dmu");
    const auto dro = b.op(Opcode::FSub, {use(ro_e), use(ro_w)}, "dro");
    const auto dpr = b.op(Opcode::FSub, {use(pr_e), use(pr_w)}, "dpr");
    const auto f_ro = b.op(Opcode::FMul, {use(dmu), liveIn()}, "f_ro");
    const auto muro = b.op(Opcode::FMul, {use(dmu), use(dro)}, "muro");
    const auto f_mu = b.op(Opcode::FMadd, {use(dpr), liveIn(), use(muro)},
                           "f_mu");
    b.store(FRO, {at(0, 0), at(1, 0)}, use(f_ro), "sfro");
    b.store(FMU, {at(0, 0), at(1, 0)}, use(f_mu), "sfmu");
    return b.build();
}

/** Y-direction flux differences (column neighbours). */
LoopNest
loopFluxY()
{
    LoopNestBuilder b("hydro2d.fluxy");
    b.loop("i", 1, 1 + N_I);
    b.loop("j", 1, 1 + N_J);
    const auto EN = b.arrayAt("EN", {DIM_I, DIM_J}, BASE + STRIDE_8K);
    const auto MV = b.arrayAt("MV", {DIM_I, DIM_J}, BASE + 6 * STRIDE_8K + 0x600);
    const auto PR = b.arrayAt("PR", {DIM_I, DIM_J}, BASE + 3 * STRIDE_8K + 0x980);
    const auto FEN =
        b.arrayAt("FEN", {DIM_I, DIM_J}, BASE + 7 * STRIDE_8K);

    const auto mv_n = b.load(MV, {at(0, 1), at(1, 0)}, "mv_n");
    const auto mv_s = b.load(MV, {at(0, -1), at(1, 0)}, "mv_s");
    const auto en_n = b.load(EN, {at(0, 1), at(1, 0)}, "en_n");
    const auto en_s = b.load(EN, {at(0, -1), at(1, 0)}, "en_s");
    const auto pr_0 = b.load(PR, {at(0, 0), at(1, 0)}, "pr_0");

    const auto dmv = b.op(Opcode::FSub, {use(mv_n), use(mv_s)}, "dmv");
    const auto den = b.op(Opcode::FSub, {use(en_n), use(en_s)}, "den");
    const auto work = b.op(Opcode::FMul, {use(dmv), use(pr_0)}, "work");
    const auto f_en = b.op(Opcode::FMadd, {use(den), liveIn(), use(work)},
                           "f_en");
    b.store(FEN, {at(0, 0), at(1, 0)}, use(f_en), "sfen");
    return b.build();
}

/** Conserved-variable update: U += dt * flux, all four fields. */
LoopNest
loopAdvance()
{
    LoopNestBuilder b("hydro2d.advance");
    b.loop("i", 1, 1 + N_I);
    b.loop("j", 1, 1 + N_J);
    const auto RO = b.arrayAt("RO", {DIM_I, DIM_J}, BASE);
    const auto EN = b.arrayAt("EN", {DIM_I, DIM_J}, BASE + STRIDE_8K);
    const auto FRO =
        b.arrayAt("FRO", {DIM_I, DIM_J}, BASE + 4 * STRIDE_8K);
    const auto FEN =
        b.arrayAt("FEN", {DIM_I, DIM_J}, BASE + 7 * STRIDE_8K);

    const auto ro = b.load(RO, {at(0, 0), at(1, 0)}, "ro");
    const auto fro = b.load(FRO, {at(0, 0), at(1, 0)}, "fro");
    const auto en = b.load(EN, {at(0, 0), at(1, 0)}, "en");
    const auto fen = b.load(FEN, {at(0, 0), at(1, 0)}, "fen");

    const auto nro = b.op(Opcode::FMadd, {use(fro), liveIn(), use(ro)},
                          "nro");
    const auto nen = b.op(Opcode::FMadd, {use(fen), liveIn(), use(en)},
                          "nen");
    b.store(RO, {at(0, 0), at(1, 0)}, use(nro), "sro");
    b.store(EN, {at(0, 0), at(1, 0)}, use(nen), "sen");
    return b.build();
}

} // namespace

Benchmark
makeHydro2d()
{
    Benchmark bench;
    bench.name = "hydro2d";
    bench.loops.push_back(loopEos());
    bench.loops.push_back(loopFluxX());
    bench.loops.push_back(loopFluxY());
    bench.loops.push_back(loopAdvance());
    return bench;
}

} // namespace mvp::workloads
