/**
 * @file
 * Optimality-gap table: for every workload loop, the II of the RMCA
 * heuristic vs. a certifying exact backend, per clustered machine —
 * the repo's analogue of the heuristic-vs-exact comparisons in the
 * exact-modulo-scheduling literature (Roorda's SMT scheduler, Tirelli
 * et al.'s SAT mapper). Loops the exact search cannot settle within
 * its budget show as "gap unknown", and each table states the unknown
 * count and the budget in force.
 *
 * With --engines the binary instead compares certifying engines — the
 * branch and bound ("bnb"/"exact"), the CDCL engine ("sat") and the
 * portfolio racing both — over the same corpus: certified/unknown
 * counts, charged work and wall clock per engine. Pair it with a
 * generated corpus (e.g. --workloads gen:seed=0xd1ff+loops=200) for
 * the refutation-throughput comparison run_bench.sh records.
 *
 * The study shards loops across a --jobs-sized pool (default: all
 * cores); the exact searches dominate its runtime and are mutually
 * independent, so it scales nearly linearly. Tables are byte-identical
 * at any job count.
 *
 * Usage: table_gap [--jobs N] [--locality NAME] [--time-budget-ms MS]
 *                  [--exact-backend NAME] [--engines A,B,...]
 *                  [--workloads A,B,...] [--sat-conflicts N]
 *                  [node_budget]
 *
 * --sat-conflicts (the deterministic CDCL conflict cap) is only
 * accepted when a SAT-based engine is selected; on a pure-B&B run the
 * flag is refused like any other unknown flag.
 *
 * The positional node_budget is the deprecated deterministic cap (0 =
 * uncapped); the wall clock is the primary budget.
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "harness/flags.hh"
#include "harness/gapstudy.hh"
#include "machine/presets.hh"

using namespace mvp;

namespace
{

/** A SAT-based engine can consume the --sat-conflicts cap. */
bool
usesSatEngine(const std::string &backend,
              const std::vector<std::string> &engines)
{
    if (backend == "sat" || backend == "portfolio")
        return true;
    for (const std::string &e : engines)
        if (e == "sat" || e == "portfolio")
            return true;
    return false;
}

} // namespace

int
main(int argc, char **argv)
{
    harness::parseObservabilityFlags(argc, argv);
    harness::ParallelDriver driver(harness::parseJobsFlag(argc, argv));
    harness::GapOptions options;
    const std::string locality = harness::parseLocalityFlag(argc, argv);
    if (!locality.empty())
        options.locality = locality;
    options.timeBudgetMs = harness::parseTimeBudgetFlag(argc, argv);
    const std::string backend =
        harness::parseExactBackendFlag(argc, argv);
    if (!backend.empty())
        options.exactBackend = backend;
    const std::string engine_list = harness::stripValueFlag(
        argc, argv, "--engines", "a comma-separated engine list");
    std::vector<std::string> engines;
    for (std::size_t pos = 0; pos < engine_list.size();) {
        std::size_t end = engine_list.find(',', pos);
        if (end == std::string::npos)
            end = engine_list.size();
        if (end > pos)
            engines.push_back(engine_list.substr(pos, end - pos));
        pos = end + 1;
    }
    const std::vector<std::string> only =
        harness::parseWorkloadsFlag(argc, argv);
    // Gate the SAT knob on a SAT-capable engine: when none is
    // selected the flag stays in argv and rejectUnknownFlags refuses
    // it (and the known-flag list omits it), instead of a pure-B&B
    // run silently ignoring it.
    std::vector<std::string> known = {
        "--jobs",      "--locality",  "--time-budget-ms",
        "--exact-backend", "--engines", "--workloads",
        "--log-level", "--metrics",   "--trace"};
    if (usesSatEngine(options.exactBackend, engines)) {
        options.satConflictBudget =
            harness::parseSatConflictsFlag(argc, argv);
        known.push_back("--sat-conflicts");
    }
    harness::rejectUnknownFlags(argc, argv, known);
    if (argc > 1)
        options.nodeBudget = std::atoll(argv[1]);

    harness::Workbench bench(only);
    for (int clusters : {2, 4}) {
        const MachineConfig machine = makeConfig(clusters);
        std::printf("=== %s ===\n\n", machine.summary().c_str());
        if (!engines.empty()) {
            const auto outcomes = harness::runEngineComparison(
                bench, machine, options, engines, driver);
            std::printf(
                "%s\n",
                harness::formatEngineComparison(outcomes).c_str());
            continue;
        }
        const auto study =
            harness::runGapStudy(bench, machine, options, driver);
        std::printf("%s\n", harness::formatGapTable(study).c_str());
    }
    return 0;
}
