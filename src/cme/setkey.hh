/**
 * @file
 * Hashed memo keys for the locality analyses.
 *
 * Every CME / oracle query is identified by (cache geometry, optional
 * target op, sorted reference set). The schedulers issue millions of
 * these queries, so the memo key must be buildable without heap
 * allocation: QueryKeyRef borrows the caller's canonical set and carries
 * a precomputed FNV hash, and the transparent hash/equality functors let
 * unordered_map look it up without materialising an owning QueryKey.
 * Owning keys are only constructed on memo misses.
 */

#ifndef MVP_CME_SETKEY_HH
#define MVP_CME_SETKEY_HH

#include <algorithm>
#include <array>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/types.hh"
#include "machine/machine.hh"

namespace mvp::cme::detail
{

/** FNV-1a step at 64-bit word granularity. */
inline std::uint64_t
fnvMix(std::uint64_t h, std::uint64_t x)
{
    h ^= x;
    h *= 1099511628211ULL;
    return h;
}

/** FNV over geometry + target op + sorted op ids. */
inline std::uint64_t
queryHash(const CacheGeom &geom, OpId op, const std::vector<OpId> &set)
{
    std::uint64_t h = 1469598103934665603ULL;
    h = fnvMix(h, static_cast<std::uint64_t>(geom.capacityBytes));
    h = fnvMix(h, static_cast<std::uint64_t>(geom.lineBytes));
    h = fnvMix(h, static_cast<std::uint64_t>(geom.assoc));
    h = fnvMix(h, static_cast<std::uint64_t>(static_cast<std::uint32_t>(op)));
    for (OpId o : set)
        h = fnvMix(h, static_cast<std::uint64_t>(static_cast<std::uint32_t>(o)));
    return h;
}

/** Owning memo key (stored in the map; built only on memo misses). */
struct QueryKey
{
    std::uint64_t hash;
    CacheGeom geom;
    OpId op;               ///< INVALID_ID for whole-set queries
    std::vector<OpId> set; ///< sorted, duplicate-free
};

/** Borrowed lookup key (never allocates). */
struct QueryKeyRef
{
    std::uint64_t hash;
    const CacheGeom *geom;
    OpId op;
    const std::vector<OpId> *set;
};

struct QueryHash
{
    using is_transparent = void;
    std::size_t operator()(const QueryKey &k) const
    {
        return static_cast<std::size_t>(k.hash);
    }
    std::size_t operator()(const QueryKeyRef &k) const
    {
        return static_cast<std::size_t>(k.hash);
    }
};

struct QueryEq
{
    using is_transparent = void;
    bool operator()(const QueryKey &a, const QueryKey &b) const
    {
        return a.hash == b.hash && a.geom == b.geom && a.op == b.op &&
               a.set == b.set;
    }
    bool operator()(const QueryKeyRef &a, const QueryKey &b) const
    {
        return a.hash == b.hash && *a.geom == b.geom && a.op == b.op &&
               *a.set == b.set;
    }
    bool operator()(const QueryKey &a, const QueryKeyRef &b) const
    {
        return (*this)(b, a);
    }
};

/**
 * Canonical view of @p set (+ optional @p extra): sorted and
 * duplicate-free. Returns @p set itself when it is already canonical
 * and contains @p extra — the zero-copy fast path the memoised-query
 * benchmarks hit — and otherwise materialises the canonical set in
 * @p scratch.
 */
inline const std::vector<OpId> &
canonicalInto(std::vector<OpId> &scratch, const std::vector<OpId> &set,
              OpId extra = INVALID_ID)
{
    bool increasing = true;
    for (std::size_t i = 1; i < set.size(); ++i) {
        if (set[i] <= set[i - 1]) {
            increasing = false;
            break;
        }
    }
    if (increasing) {
        if (extra == INVALID_ID)
            return set;
        const auto it =
            std::lower_bound(set.begin(), set.end(), extra);
        if (it != set.end() && *it == extra)
            return set;
        scratch.clear();
        scratch.reserve(set.size() + 1);
        scratch.insert(scratch.end(), set.begin(), it);
        scratch.push_back(extra);
        scratch.insert(scratch.end(), it, set.end());
        return scratch;
    }
    scratch.assign(set.begin(), set.end());
    if (extra != INVALID_ID)
        scratch.push_back(extra);
    std::sort(scratch.begin(), scratch.end());
    scratch.erase(std::unique(scratch.begin(), scratch.end()),
                  scratch.end());
    return scratch;
}

/**
 * Memoised answer of one locality query: the miss ratio plus the 95%
 * CI half-width the sampling solver stopped at (0 for exhaustive and
 * exact answers). The half-width rides along so the hybrid provider
 * can re-read a memoised query's convergence without re-sampling.
 */
struct RatioValue
{
    double ratio = 0.0;
    double ciHalfWidth = 0.0;
};

/**
 * Open-addressing memo from QueryKey to a RatioValue, specialised for
 * the solver's hot path: the caller supplies the precomputed hash,
 * lookups are one masked probe sequence over a power-of-two table (no
 * modulo division, no node allocation), and misses append to a flat
 * entry array.
 */
class RatioMemo
{
  public:
    /** Pointer to the memoised value, or nullptr on a miss. */
    const RatioValue *find(const QueryKeyRef &ref) const
    {
        if (table_.empty())
            return nullptr;
        const std::size_t mask = table_.size() - 1;
        for (std::size_t i = ref.hash & mask;; i = (i + 1) & mask) {
            const std::int32_t e = table_[i];
            if (e < 0)
                return nullptr;
            const Entry &ent = entries_[static_cast<std::size_t>(e)];
            if (ent.key.hash == ref.hash && ent.key.geom == *ref.geom &&
                ent.key.op == ref.op && ent.key.set == *ref.set)
                return &ent.value;
        }
    }

    /** Insert a value for @p ref (must not already be present). */
    void insert(const QueryKeyRef &ref, RatioValue value)
    {
        if ((entries_.size() + 1) * 4 > table_.size() * 3)
            grow();
        entries_.push_back(
            {QueryKey{ref.hash, *ref.geom, ref.op, *ref.set}, value});
        place(static_cast<std::int32_t>(entries_.size() - 1));
    }

    std::size_t size() const { return entries_.size(); }

    /** Visit every entry in insertion order (persistence export). */
    template <typename Fn>
    void forEach(Fn &&fn) const
    {
        for (const Entry &entry : entries_)
            fn(entry.key, entry.value);
    }

  private:
    struct Entry
    {
        QueryKey key;
        RatioValue value;
    };

    void place(std::int32_t index)
    {
        const std::size_t mask = table_.size() - 1;
        std::size_t i = entries_[static_cast<std::size_t>(index)].key.hash &
                        mask;
        while (table_[i] >= 0)
            i = (i + 1) & mask;
        table_[i] = index;
    }

    void grow()
    {
        const std::size_t cap = table_.empty() ? 64 : table_.size() * 2;
        table_.assign(cap, -1);
        for (std::size_t e = 0; e < entries_.size(); ++e)
            place(static_cast<std::int32_t>(e));
    }

    std::vector<Entry> entries_;
    std::vector<std::int32_t> table_;   ///< entry index or -1 (empty)
};

/**
 * Concurrency-safe RatioMemo: the open-addressing table sharded by the
 * high bits of the query hash, one mutex per shard. The parallel
 * experiment driver queries one loop's CmeAnalysis from every worker at
 * once; striping keeps the common case (different queries hitting
 * different shards) contention-free while the per-shard probe sequence
 * stays exactly the single-threaded RatioMemo's.
 *
 * Determinism does not depend on interleaving: a memoised value is a
 * pure function of the key (the sampling seed derives from the key, not
 * from query order), so when two threads race to answer the same fresh
 * query they compute identical values and tryInsert() keeps whichever
 * arrives first. Shard selection uses bits the in-shard probe (low
 * bits) ignores, so sharding does not degrade probe clustering.
 */
class ShardedRatioMemo
{
  public:
    /** True (and *out filled) when @p ref is memoised. */
    bool lookup(const QueryKeyRef &ref, RatioValue *out) const
    {
        const Shard &shard = shards_[shardOf(ref.hash)];
        std::lock_guard<std::mutex> lock(shard.mu);
        if (const RatioValue *hit = shard.memo.find(ref)) {
            *out = *hit;
            return true;
        }
        return false;
    }

    /**
     * Memoise @p value for @p ref unless another thread already did;
     * returns the value that ended up in the memo (identical to
     * @p value for deterministic solvers — asserted by the tests).
     */
    RatioValue tryInsert(const QueryKeyRef &ref, RatioValue value)
    {
        Shard &shard = shards_[shardOf(ref.hash)];
        std::lock_guard<std::mutex> lock(shard.mu);
        if (const RatioValue *hit = shard.memo.find(ref))
            return *hit;
        shard.memo.insert(ref, value);
        return value;
    }

    /** Total memoised queries (locks every shard; not a hot path). */
    std::size_t size() const
    {
        std::size_t n = 0;
        for (const Shard &shard : shards_) {
            std::lock_guard<std::mutex> lock(shard.mu);
            n += shard.memo.size();
        }
        return n;
    }

    /**
     * Visit every memoised (key, value) pair, shard by shard under the
     * shard lock (persistence export; not a hot path). @p fn must not
     * re-enter this memo.
     */
    template <typename Fn>
    void forEach(Fn &&fn) const
    {
        for (const Shard &shard : shards_) {
            std::lock_guard<std::mutex> lock(shard.mu);
            shard.memo.forEach(fn);
        }
    }

  private:
    static constexpr std::size_t NUM_SHARDS = 16;   // power of two

    struct Shard
    {
        mutable std::mutex mu;
        RatioMemo memo;
    };

    /** High hash bits: disjoint from the low bits RatioMemo probes
     * with. */
    static std::size_t shardOf(std::uint64_t hash)
    {
        return static_cast<std::size_t>(hash >> 60) & (NUM_SHARDS - 1);
    }

    std::array<Shard, NUM_SHARDS> shards_;
};

} // namespace mvp::cme::detail

#endif // MVP_CME_SETKEY_HH
