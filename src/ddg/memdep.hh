/**
 * @file
 * Affine memory-dependence analysis between two references of a loop
 * body, producing the innermost-loop dependence distance used by the
 * modulo scheduler.
 */

#ifndef MVP_DDG_MEMDEP_HH
#define MVP_DDG_MEMDEP_HH

#include <optional>

#include "ir/loop.hh"

namespace mvp::ddg
{

/** Outcome of the dependence test between two same-array references. */
struct MemDepResult
{
    /** Kinds of relation the test can prove. */
    enum class Kind
    {
        Independent,   ///< provably never touch the same element
        Exact,         ///< same element exactly every @c distance iterations
        Unknown,       ///< may alias; must be serialised conservatively
    };

    Kind kind = Kind::Independent;

    /**
     * For Exact: the signed innermost-iteration distance k such that the
     * element @p from touches at iteration i is touched by @p to at
     * iteration i + k. k >= 0 yields a dependence from -> to with
     * distance k; k < 0 yields a dependence to -> from with distance -k.
     */
    int distance = 0;

    /**
     * For Exact with distance 0: true when no index depends on the
     * innermost loop, i.e. the two references collide on the same element
     * in *every* pair of iterations. The caller must then also serialise
     * across iterations (distance-1 back edge).
     */
    bool everyIteration = false;
};

/**
 * Test the dependence between two references of the same loop nest.
 *
 * Outer induction variables are held equal (modulo scheduling constrains
 * only dependences carried by the innermost loop). For uniformly
 * generated pairs the test is exact; other same-array pairs fall back to
 * a per-dimension GCD/range independence test and otherwise report
 * Unknown.
 *
 * @param nest  the enclosing loop nest
 * @param from  reference of the (program-order) earlier operation
 * @param to    reference of the later operation
 */
MemDepResult testMemoryDependence(const ir::LoopNest &nest,
                                  const ir::AffineRef &from,
                                  const ir::AffineRef &to);

} // namespace mvp::ddg

#endif // MVP_DDG_MEMDEP_HH
