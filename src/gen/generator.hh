/**
 * @file
 * Seeded synthetic-loop and machine generator.
 *
 * The eight builtin suites cover the paper's evaluation, but 64–96
 * fixed loop-machine combos are far too few to validate the scheduler
 * stack the way the exact-scheduling literature does (generated
 * instance sets, heuristic-vs-exact cross-checks). This module draws
 * arbitrarily many structurally-valid `ir::LoopNest`s and
 * `MachineConfig`s from parameterised distributions, deterministically
 * from a 64-bit seed: the same seed always yields the same scenario,
 * on every platform, at any thread count — which is what lets the
 * differential pipeline (harness/differential.hh) shard scenarios
 * across a worker pool and still report reproducible failures by seed.
 *
 * Generated loops mirror the properties the builtin suites model
 * deliberately: uniformly-generated reference families (group reuse),
 * arrays laid out to conflict in direct-mapped caches, register
 * recurrences (accumulators and forward-referencing chains), and
 * occasional read-modify-write arrays that create memory-carried
 * dependences. Every emitted nest passes LoopNest::validate().
 */

#ifndef MVP_GEN_GENERATOR_HH
#define MVP_GEN_GENERATOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "ir/loop.hh"
#include "machine/machine.hh"

namespace mvp::gen
{

/**
 * Distribution knobs. The defaults keep iteration spaces small enough
 * (inner trips 8–48, at most a few hundred points) that the CME
 * sampling solver runs in its exhaustive mode and the lockstep
 * simulator finishes in microseconds — the regime the differential
 * pipeline wants, where CME answers are exact and comparable to the
 * oracle bit for bit.
 */
struct GenParams
{
    /** @name Loop shape */
    /// @{
    int minDepth = 1;            ///< loop-nest depth (1 = innermost only)
    int maxDepth = 2;
    std::int64_t minInnerTrip = 8;
    std::int64_t maxInnerTrip = 48;
    std::int64_t minOuterTrip = 2;   ///< per outer loop
    std::int64_t maxOuterTrip = 6;
    /// @}

    /** @name Body shape */
    /// @{
    int minLoads = 1;
    int maxLoads = 5;
    int minCompute = 2;          ///< non-memory operations
    int maxCompute = 7;
    int maxStores = 2;
    int maxArrays = 4;
    /// @}

    /** @name Dataflow */
    /// @{
    double pLiveIn = 0.15;       ///< operand is a loop-invariant live-in
    double pRecurrence = 0.5;    ///< nest carries >= 1 register recurrence
    int maxRecDistance = 3;      ///< loop-carried distance of recurrences
    /// @}

    /** @name Access patterns */
    /// @{
    double pStride2 = 0.2;       ///< coefficient 2 instead of 1
    double pOffsetRef = 0.6;     ///< reference offset in [-2, 2] (stencils)
    double pConflictLayout = 0.5;   ///< arrays placed 8 KB apart
    double pReuseArray = 0.5;    ///< reference an existing array again
    /// @}

    /** @name Machine shape */
    /// @{
    int maxClusters = 4;         ///< 1, 2 or 4 (powers of two)
    int maxFusPerClass = 3;      ///< per-cluster FU count in [1, max]
    double pTwoWayCache = 0.2;   ///< 2-way instead of direct-mapped
    double pWideLine = 0.25;     ///< 64 B lines instead of 32 B
    double pVaryLatency = 0.3;   ///< scale FP/memory latencies
    /// @}
};

/**
 * Generate one loop nest from @p seed. Deterministic; the result
 * passes validate() and contains at least one load. @p name_hint names
 * the nest ("" derives "gen<seed>").
 */
ir::LoopNest generateLoop(std::uint64_t seed,
                          const GenParams &params = {},
                          const std::string &name_hint = "");

/**
 * Generate one machine configuration from @p seed. Deterministic; the
 * result passes MachineConfig::validate().
 */
MachineConfig generateMachine(std::uint64_t seed,
                              const GenParams &params = {});

/** One generated experiment point. */
struct Scenario
{
    std::uint64_t seed = 0;
    ir::LoopNest nest;
    MachineConfig machine;
};

/**
 * Generate the loop-machine pair of @p seed (independent sub-streams,
 * so scenario N's loop does not change when machine knobs move).
 */
Scenario generateScenario(std::uint64_t seed,
                          const GenParams &params = {});

/**
 * Generate @p count loop nests under one base seed, named
 * "gen<seed>.l<i>" — the shape the `gen:` workload scheme exposes as a
 * synthetic benchmark suite.
 */
std::vector<ir::LoopNest> generateSuite(std::uint64_t seed, int count,
                                        const GenParams &params = {});

/**
 * Derive the seed of sub-stream @p index from @p base (SplitMix64
 * finalisation): scenario i of a sweep is a pure function of
 * (base, i), independent of every other scenario.
 */
std::uint64_t deriveSeed(std::uint64_t base, std::uint64_t index);

/**
 * Parse a `gen:` workload spec — the text after the scheme prefix,
 * `key=value` pairs separated by ',' or '+' ('+' survives inside
 * comma-separated workload lists, e.g.
 * `--workloads tomcatv,gen:seed=7+loops=4`):
 *
 *   seed=<u64>    base seed            (default 1)
 *   loops=<n>     nests to generate    (default 8, max 4096)
 *   depth=<n>     fixed nest depth     (default: distribution)
 *   ops=<n>       max compute ops      (default: distribution)
 *
 * fatal() on unknown keys or malformed values. Returns the loops.
 */
std::vector<ir::LoopNest> generateFromSpec(const std::string &spec);

} // namespace mvp::gen

#endif // MVP_GEN_GENERATOR_HH
