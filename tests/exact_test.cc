/**
 * @file
 * The exact branch-and-bound backend and the backend registry.
 *
 *  - Property sweep over every workload loop and clustered machine:
 *    the exact search settles within its default node budget, its II
 *    never exceeds the RMCA heuristic's (the acceptance gap property),
 *    never undercuts MII, and every exact schedule passes the same
 *    MRT/bus/lifetime validity checks as the golden RMCA schedules.
 *  - Optimality certificates: II == MII always carries provenOptimal;
 *    a completed pressure search never does worse than a heuristic
 *    schedule at the same II.
 *  - Graceful degradation: a starved budget reports "gap unknown"
 *    instead of a wrong answer.
 *  - Registry: built-in names resolve, unknown ones do not, runtime
 *    registration works, and the verify backend fills the gap stats.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "cme/solver.hh"
#include "ddg/ddg.hh"
#include "machine/presets.hh"
#include "sched/backend.hh"
#include "sched/exact/bnb.hh"
#include "workloads/workloads.hh"

namespace mvp::sched
{
namespace
{

int
sumMaxLive(const ModuloSchedule &s)
{
    return std::accumulate(s.maxLive().begin(), s.maxLive().end(), 0);
}

/** The acceptance property: exact II <= rmca II on every loop the
 * search settles within budget (here: all of them), with full
 * validity. */
TEST(ExactVsRmcaGap, ExactNeverWorseAndAlwaysValid)
{
    int solved = 0;
    for (const auto &wl : workloads::allLoops()) {
        const auto &nest = wl.nest;
        cme::CmeAnalysis cme(nest);
        for (int nc : {1, 2, 4}) {
            const auto machine = makeConfig(nc);
            const auto graph = ddg::Ddg::build(nest, machine);
            const std::string label = wl.benchmark + "/" + nest.name() +
                                      "/c" + std::to_string(nc);

            const auto ex = exact::scheduleExact(graph, machine);
            ASSERT_TRUE(ex.ok) << label << ": " << ex.error
                               << " (nodes " << ex.stats.searchNodes
                               << ")";
            ++solved;

            // Same validity bar as the golden RMCA schedules:
            // dependences, FU capacity, bus occupancy, comms,
            // register pressure.
            EXPECT_EQ(ex.schedule.validate(graph, machine), "")
                << label;
            EXPECT_GE(ex.schedule.ii(), ex.stats.mii) << label;
            EXPECT_GE(ex.schedule.ii(), ex.stats.iiLowerBound) << label;
            for (int ml : ex.schedule.maxLive())
                EXPECT_LE(ml, machine.regsPerCluster) << label;

            // II == lower bound must carry the certificate.
            EXPECT_EQ(ex.stats.provenOptimal,
                      ex.schedule.ii() == ex.stats.iiLowerBound)
                << label;

            const auto rm = scheduleRmca(graph, machine, 0.25, cme);
            ASSERT_TRUE(rm.ok) << label;
            EXPECT_LE(ex.schedule.ii(), rm.schedule.ii()) << label;

            // A completed pressure search at the heuristic's II is at
            // least as register-lean as the heuristic (whose schedule
            // lies inside the search space).
            const auto base = scheduleBaseline(graph, machine);
            ASSERT_TRUE(base.ok) << label;
            EXPECT_LE(ex.schedule.ii(), base.schedule.ii()) << label;
            if (ex.stats.pressureOptimal &&
                ex.schedule.ii() == base.schedule.ii())
                EXPECT_LE(sumMaxLive(ex.schedule),
                          sumMaxLive(base.schedule))
                    << label;
        }
    }
    // The sweep really covered the suite (8 benchmarks x 4 loops x 3
    // machines).
    EXPECT_EQ(solved, 96);
}

TEST(ExactBackend, Deterministic)
{
    const auto bench = workloads::makeHydro2d();
    const auto machine = makeTwoCluster();
    const auto graph = ddg::Ddg::build(bench.loops[0], machine);
    const auto a = exact::scheduleExact(graph, machine);
    const auto b = exact::scheduleExact(graph, machine);
    ASSERT_TRUE(a.ok);
    ASSERT_TRUE(b.ok);
    EXPECT_EQ(a.schedule.ii(), b.schedule.ii());
    EXPECT_EQ(a.stats.searchNodes, b.stats.searchNodes);
    for (std::size_t v = 0; v < graph.size(); ++v) {
        EXPECT_EQ(a.schedule.placed(static_cast<OpId>(v)).time,
                  b.schedule.placed(static_cast<OpId>(v)).time);
        EXPECT_EQ(a.schedule.placed(static_cast<OpId>(v)).cluster,
                  b.schedule.placed(static_cast<OpId>(v)).cluster);
    }
}

TEST(ExactBackend, StarvedBudgetDegradesGracefully)
{
    const auto bench = workloads::makeApplu();
    const auto machine = makeFourCluster();
    const auto graph = ddg::Ddg::build(bench.loops[1], machine);
    exact::BnbOptions opt;
    opt.nodeBudget = 3;
    const auto r = exact::scheduleExact(graph, machine, opt);
    EXPECT_FALSE(r.ok);
    EXPECT_TRUE(r.stats.budgetExhausted);
    EXPECT_FALSE(r.stats.provenOptimal);
    EXPECT_NE(r.error.find("budget"), std::string::npos);
}

TEST(ExactBackend, TiebreakOffStopsAtFirstSchedule)
{
    const auto bench = workloads::makeSwim();
    const auto machine = makeTwoCluster();
    const auto graph = ddg::Ddg::build(bench.loops[0], machine);
    exact::BnbOptions all;
    exact::BnbOptions first;
    first.tiebreakPressure = false;
    const auto a = exact::scheduleExact(graph, machine, all);
    const auto b = exact::scheduleExact(graph, machine, first);
    ASSERT_TRUE(a.ok);
    ASSERT_TRUE(b.ok);
    EXPECT_EQ(a.schedule.ii(), b.schedule.ii());
    EXPECT_LE(b.stats.searchNodes, a.stats.searchNodes);
    EXPECT_LE(sumMaxLive(a.schedule), sumMaxLive(b.schedule));
    EXPECT_FALSE(b.stats.pressureOptimal);
}

TEST(BackendRegistry, BuiltinsResolve)
{
    auto &reg = BackendRegistry::instance();
    for (const char *name : {"baseline", "rmca", "exact", "verify"}) {
        EXPECT_TRUE(reg.has(name)) << name;
        const auto backend = reg.create(name);
        ASSERT_NE(backend, nullptr);
        EXPECT_EQ(backend->name(), name);
    }
    EXPECT_FALSE(reg.has("simulated-annealing"));
    // The registry is a process-wide singleton other tests may extend
    // (RuntimeRegistration adds one), so check containment and order,
    // not exact contents.
    const auto names = reg.names();
    EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
    for (const char *name : {"baseline", "exact", "rmca", "verify"})
        EXPECT_NE(std::find(names.begin(), names.end(), name),
                  names.end())
            << name;
}

TEST(BackendRegistry, RuntimeRegistration)
{
    struct Null : SchedulerBackend
    {
        std::string_view name() const override { return "null"; }
        ScheduleResult schedule(const ddg::Ddg &, const MachineConfig &,
                                const SchedulerOptions &,
                                SchedContext &) const override
        {
            ScheduleResult r;
            r.error = "null backend never schedules";
            return r;
        }
    };
    auto &reg = BackendRegistry::instance();
    reg.add("null", [] { return std::make_unique<Null>(); });
    EXPECT_TRUE(reg.has("null"));
    const auto bench = workloads::makeSwim();
    const auto machine = makeTwoCluster();
    const auto graph = ddg::Ddg::build(bench.loops[0], machine);
    const auto r =
        scheduleWithBackend("null", graph, machine, SchedulerOptions{});
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("null backend"), std::string::npos);
}

TEST(BackendRegistry, HeuristicBackendsMatchDirectEngines)
{
    const auto bench = workloads::makeTomcatv();
    const auto machine = makeTwoCluster();
    const auto &nest = bench.loops[0];
    const auto graph = ddg::Ddg::build(nest, machine);
    cme::CmeAnalysis cme(nest);

    SchedulerOptions opt;
    opt.missThreshold = 0.25;
    opt.locality = &cme;
    const auto via_reg = scheduleWithBackend("rmca", graph, machine, opt);
    const auto direct = scheduleRmca(graph, machine, 0.25, cme);
    ASSERT_TRUE(via_reg.ok);
    ASSERT_TRUE(direct.ok);
    EXPECT_EQ(via_reg.schedule.ii(), direct.schedule.ii());
    for (std::size_t v = 0; v < graph.size(); ++v) {
        EXPECT_EQ(via_reg.schedule.placed(static_cast<OpId>(v)).time,
                  direct.schedule.placed(static_cast<OpId>(v)).time);
        EXPECT_EQ(
            via_reg.schedule.placed(static_cast<OpId>(v)).cluster,
            direct.schedule.placed(static_cast<OpId>(v)).cluster);
    }
}

TEST(VerifyBackend, ReportsTheGap)
{
    const auto bench = workloads::makeHydro2d();
    const auto machine = makeTwoCluster();
    const auto &nest = bench.loops[0];   // hydro2d.eos: a known gap
    const auto graph = ddg::Ddg::build(nest, machine);
    cme::CmeAnalysis cme(nest);

    SchedulerOptions opt;
    opt.missThreshold = 0.25;
    opt.locality = &cme;
    const auto r = scheduleWithBackend("verify", graph, machine, opt);
    ASSERT_TRUE(r.ok);
    ASSERT_TRUE(r.stats.gapKnown);
    EXPECT_GE(r.stats.exactII, r.stats.mii);
    EXPECT_EQ(r.stats.iiGap, r.schedule.ii() - r.stats.exactII);
    EXPECT_GE(r.stats.iiGap, 0);
    // The verify result is the *heuristic* schedule (verify measures,
    // it does not replace).
    const auto rm = scheduleRmca(graph, machine, 0.25, cme);
    ASSERT_TRUE(rm.ok);
    EXPECT_EQ(r.schedule.ii(), rm.schedule.ii());
}

} // namespace
} // namespace mvp::sched
