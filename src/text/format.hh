/**
 * @file
 * Human-writable text format for loop nests and machine configurations.
 *
 * Everything the in-memory IR captures — loop bounds, array layouts,
 * operation dataflow with loop-carried distances, affine subscripts,
 * and the full multiVLIWprocessor parameter set — round-trips through
 * a line-oriented grammar (docs/scenarios.md) so that experiments are
 * no longer restricted to the eight compiled-in suites: loops can be
 * written by hand, emitted by the synthetic generator (src/gen/), and
 * fed back through the `file:<path>` workload scheme of the workloads
 * registry.
 *
 * Round-trip contract: for any valid nest N, parse(print(N)) is
 * structurally identical to N and print(parse(print(N))) == print(N)
 * byte for byte (property-tested over all builtin workloads). The
 * printer is the canonical form; the parser additionally accepts
 * flexible whitespace, `#` comments and omitted optional fields.
 *
 * Errors in user-supplied text are reported with mvp_fatal() carrying
 * the file name (when known) and line number.
 */

#ifndef MVP_TEXT_FORMAT_HH
#define MVP_TEXT_FORMAT_HH

#include <string>
#include <vector>

#include "ir/loop.hh"
#include "machine/machine.hh"

namespace mvp::text
{

/**
 * Contents of one loop file: any number of loop nests plus an optional
 * `suite "name"` directive naming the collection (the workloads
 * registry uses it as the benchmark name; empty means "derive from the
 * file name").
 */
struct LoopFile
{
    std::string suite;
    std::vector<ir::LoopNest> loops;
};

/** @name Loop nests */
/// @{

/** Canonical text rendering of one loop nest. */
std::string printLoop(const ir::LoopNest &nest);

/** Canonical rendering of a whole file (suite directive + loops). */
std::string printLoopFile(const LoopFile &file);

/**
 * Parse loop-file text. @p origin names the source in diagnostics
 * (a file path, or e.g. "<string>"). fatal() on malformed input;
 * every parsed nest is validate()d.
 */
LoopFile parseLoops(const std::string &text,
                    const std::string &origin = "<string>");

/** Parse text holding exactly one loop nest. */
ir::LoopNest parseLoop(const std::string &text,
                       const std::string &origin = "<string>");

/** Read and parse @p path; fatal() when unreadable. */
LoopFile loadLoopFile(const std::string &path);

/** Write the canonical rendering of @p file to @p path. */
void saveLoopFile(const LoopFile &file, const std::string &path);

/// @}

/** @name Machine configurations */
/// @{

/** Canonical text rendering of a machine configuration. */
std::string printMachine(const MachineConfig &cfg);

/**
 * Parse one `machine` block. Omitted keys keep their MachineConfig
 * defaults; the result is validate()d. fatal() on malformed input.
 */
MachineConfig parseMachine(const std::string &text,
                           const std::string &origin = "<string>");

/** Read and parse @p path; fatal() when unreadable. */
MachineConfig loadMachineFile(const std::string &path);

/** Write the canonical rendering of @p cfg to @p path. */
void saveMachineFile(const MachineConfig &cfg, const std::string &path);

/// @}

/** @name Scenarios (one loop + one machine in a single text) */
/// @{

/**
 * A self-contained scheduling scenario: exactly one loop nest and one
 * machine configuration. This is the wire payload of the scheduling
 * service (src/svc/) — the unit a single request describes.
 */
struct ScenarioText
{
    ir::LoopNest loop;
    MachineConfig machine;
};

/**
 * Canonical rendering: the loop block, a blank line, the machine
 * block. parseScenario(printScenario(s)) reprints byte-identically —
 * the service's content-addressed cache keys on this form.
 */
std::string printScenario(const ScenarioText &scenario);

/**
 * Parse one scenario: a `loop` block and a `machine` block in either
 * order (a `suite` directive is tolerated and ignored). fatal() unless
 * exactly one of each is present.
 */
ScenarioText parseScenario(const std::string &text,
                           const std::string &origin = "<string>");

/// @}

} // namespace mvp::text

#endif // MVP_TEXT_FORMAT_HH
