#include "ddg/memdep.hh"

#include <cstdlib>

#include "common/logging.hh"

namespace mvp::ddg
{

namespace
{

/**
 * Min/max of an affine expression over the iteration box (same logic the
 * IR validator uses, duplicated here to keep the analysis self-contained).
 */
std::pair<std::int64_t, std::int64_t>
exprRange(const ir::AffineExpr &expr, const ir::LoopNest &nest)
{
    std::int64_t lo = expr.constant;
    std::int64_t hi = expr.constant;
    const auto &loops = nest.loops();
    for (std::size_t d = 0; d < loops.size(); ++d) {
        const std::int64_t c = expr.coeff(d);
        if (c == 0 || loops[d].tripCount() == 0)
            continue;
        const std::int64_t first = loops[d].lower;
        const std::int64_t last =
            loops[d].lower + (loops[d].tripCount() - 1) * loops[d].step;
        lo += c > 0 ? c * first : c * last;
        hi += c > 0 ? c * last : c * first;
    }
    return {lo, hi};
}

/**
 * Exact test for uniformly generated pairs: all index coefficients equal,
 * so the references touch the same element iff the constant offsets are
 * bridged by a consistent innermost-iteration shift in every dimension.
 */
MemDepResult
uniformTest(const ir::LoopNest &nest, const ir::AffineRef &from,
            const ir::AffineRef &to)
{
    const std::size_t inner = nest.innerDepth();
    const std::int64_t step = nest.innerLoop().step;

    bool have_k = false;
    std::int64_t k = 0;
    for (std::size_t d = 0; d < from.index.size(); ++d) {
        const std::int64_t c_inner = from.index[d].coeff(inner);
        const std::int64_t delta =
            from.index[d].constant - to.index[d].constant;
        if (c_inner == 0) {
            if (delta != 0)
                return {MemDepResult::Kind::Independent, 0};
            continue;
        }
        const std::int64_t per_iter = c_inner * step;
        if (delta % per_iter != 0)
            return {MemDepResult::Kind::Independent, 0};
        const std::int64_t k_d = delta / per_iter;
        if (have_k && k_d != k)
            return {MemDepResult::Kind::Independent, 0};
        have_k = true;
        k = k_d;
    }

    if (!have_k) {
        // No dimension depends on the innermost loop: the two references
        // touch the same element in every pair of iterations.
        return {MemDepResult::Kind::Exact, 0, true};
    }

    // Shifts at least as long as the innermost trip never materialise
    // inside one execution of the loop.
    if (std::llabs(k) >= nest.innerTripCount())
        return {MemDepResult::Kind::Independent, 0, false};

    return {MemDepResult::Kind::Exact, static_cast<int>(k), false};
}

} // namespace

MemDepResult
testMemoryDependence(const ir::LoopNest &nest, const ir::AffineRef &from,
                     const ir::AffineRef &to)
{
    if (from.array != to.array)
        return {MemDepResult::Kind::Independent, 0};

    if (from.uniformlyGeneratedWith(to))
        return uniformTest(nest, from, to);

    // Non-uniform pair: cheap disproofs, then conservative Unknown.
    for (std::size_t d = 0; d < from.index.size(); ++d) {
        auto [lo_a, hi_a] = exprRange(from.index[d], nest);
        auto [lo_b, hi_b] = exprRange(to.index[d], nest);
        if (hi_a < lo_b || hi_b < lo_a)
            return {MemDepResult::Kind::Independent, 0};
    }
    return {MemDepResult::Kind::Unknown, 0};
}

} // namespace mvp::ddg
