/**
 * @file
 * Walk-through of the paper's Section 3 example (Figure 3), printing
 * every intermediate artefact: the loop, the DDG, the CME analysis the
 * RMCA scheduler consults, both schedules as modulo reservation tables,
 * the generated VLIW code, and the simulated cycle breakdown.
 *
 * Run it after reading Section 3 of the paper: each block of output
 * corresponds to one paragraph of the example.
 */

#include <cstdio>

#include "cme/oracle.hh"
#include "cme/reuse.hh"
#include "cme/solver.hh"
#include "ddg/ddg.hh"
#include "harness/motivating.hh"
#include "sched/mii.hh"
#include "sched/scheduler.hh"
#include "sim/simulator.hh"
#include "vliw/kernel.hh"

using namespace mvp;

int
main()
{
    const auto nest = harness::motivatingLoop();
    const auto machine = harness::motivatingMachine();

    std::printf("=== the loop (DO I = 1, N, 2 : A(I) = B(I)*C(I) + "
                "B(I+1)*C(I+1)) ===\n%s\n",
                nest.toString().c_str());
    std::printf("=== the machine ===\n%s\n\n", machine.summary().c_str());

    const auto graph = ddg::Ddg::build(nest, machine);
    std::printf("=== dependence graph ===\n%s\n",
                graph.toString().c_str());
    std::printf("ResMII = %lld (5 memory ops / 2 MEM units), "
                "RecMII = %lld => mII = %lld\n\n",
                static_cast<long long>(sched::resMii(nest, machine)),
                static_cast<long long>(graph.recMii()),
                static_cast<long long>(sched::minII(graph, machine)));

    // --- What the CME analysis sees. ---
    cme::CmeAnalysis cme(nest);
    const CacheGeom geom = machine.clusterCacheGeom();
    std::printf("=== CME analysis (per-cluster cache: %lld B, %d B "
                "lines) ===\n",
                static_cast<long long>(geom.capacityBytes),
                geom.lineBytes);
    std::printf("ping-pong set {LD1=B(I), LD2=C(I)} together: "
                "%.2f misses/iteration\n",
                cme.missesPerIteration({0, 1}, geom));
    std::printf("grouped set   {LD1=B(I), LD3=B(I+1)} together: "
                "%.2f misses/iteration\n",
                cme.missesPerIteration({0, 2}, geom));
    cme::ReuseAnalysis reuse(nest);
    std::printf("LD1 inner stride: %lld B (self-%s)\n",
                static_cast<long long>(reuse.innerStrideBytes(0)),
                reuse.selfReuse(0, geom.lineBytes) ==
                        cme::ReuseKind::SelfSpatial
                    ? "spatial"
                    : "other");
    const auto pairs = reuse.groupPairs({0, 2}, geom.lineBytes);
    if (!pairs.empty())
        std::printf("LD1/LD3 group reuse: %s, distance %lld\n\n",
                    std::string(reuseKindName(pairs[0].kind)).c_str(),
                    static_cast<long long>(pairs[0].distance));

    // --- Both schedules. ---
    for (bool rmca : {false, true}) {
        sched::SchedulerOptions opt;
        opt.memoryAware = rmca;
        opt.missThreshold = 1.0;
        opt.locality = &cme;
        auto r = sched::ClusteredModuloScheduler(graph, machine, opt)
                     .run();
        if (!r.ok) {
            std::printf("scheduling failed: %s\n", r.error.c_str());
            return 1;
        }
        std::printf("=== %s ===\n%s",
                    rmca ? "Figure 3(b): RMCA" : "Figure 3(a): Baseline",
                    r.schedule.toString(graph, machine).c_str());
        const auto img =
            vliw::KernelImage::generate(graph, r.schedule, machine);
        std::printf("kernel utilisation %.0f%%, %zu instructions with "
                    "prologue/epilogue\n",
                    img.kernelUtilisation() * 100, img.codeSizeInstrs());
        const auto sim = sim::simulateLoop(graph, r.schedule, machine);
        std::printf("simulated: compute %lld + stall %lld = %lld "
                    "cycles\n\n",
                    static_cast<long long>(sim.computeCycles),
                    static_cast<long long>(sim.stallCycles),
                    static_cast<long long>(sim.totalCycles()));
    }

    std::printf("The second schedule trades one II (3 -> 4) and an "
                "extra register\ncommunication for conflict-free "
                "caches, which is the paper's point.\n");
    return 0;
}
