#include "svc/server.hh"

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <istream>
#include <ostream>
#include <string>
#include <thread>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/logging.hh"
#include "svc/session.hh"

namespace mvp::svc
{

void
runStdioSession(SchedService &service, std::istream &in,
                std::ostream &out)
{
    ServiceSession session(service);
    std::string emitted;
    char buf[1 << 16];
    while (in) {
        in.read(buf, sizeof buf);
        const std::streamsize got = in.gcount();
        if (got <= 0)
            break;
        emitted.clear();
        const bool open = session.consume(
            buf, static_cast<std::size_t>(got), emitted);
        out.write(emitted.data(),
                  static_cast<std::streamsize>(emitted.size()));
        out.flush();
        if (!open)
            return;
    }
    emitted.clear();
    session.finish(emitted);
    out.write(emitted.data(),
              static_cast<std::streamsize>(emitted.size()));
    out.flush();
}

namespace
{

/**
 * Write all of @p data to @p fd, restarting on EINTR and looping on
 * short writes (a blocking send may still transfer fewer bytes than
 * asked when a signal lands mid-copy). Returns false once the peer is
 * gone.
 */
bool
sendAll(int fd, const char *data, std::size_t n)
{
    std::size_t sent = 0;
    while (sent < n) {
        const ssize_t got = ::send(fd, data + sent, n - sent, 0);
        if (got < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (got == 0)
            return false;
        sent += static_cast<std::size_t>(got);
    }
    return true;
}

/** One connection: read into the session, write what it emits. */
void
serveConnection(SchedService &service, int fd)
{
    ServiceSession session(service);
    std::string emitted;
    char buf[1 << 16];
    bool open = true;
    for (;;) {
        const ssize_t got = ::recv(fd, buf, sizeof buf, 0);
        if (got < 0 && errno == EINTR)
            continue;
        if (got <= 0)
            break;
        emitted.clear();
        open = session.consume(buf, static_cast<std::size_t>(got),
                               emitted);
        if (!sendAll(fd, emitted.data(), emitted.size()))
            open = false;
        if (!open)
            break;
    }
    if (open) {
        emitted.clear();
        session.finish(emitted);
        sendAll(fd, emitted.data(), emitted.size());
    }
    ::close(fd);
}

} // namespace

int
runTcpServer(SchedService &service, int port)
{
    const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listener < 0) {
        mvp_warn("svc: socket() failed");
        return 1;
    }
    const int one = 1;
    ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::bind(listener, reinterpret_cast<const sockaddr *>(&addr),
               sizeof addr) != 0) {
        mvp_warn("svc: cannot bind 127.0.0.1:", port);
        ::close(listener);
        return 1;
    }
    if (::listen(listener, 16) != 0) {
        mvp_warn("svc: listen() failed");
        ::close(listener);
        return 1;
    }

    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    ::getsockname(listener, reinterpret_cast<sockaddr *>(&bound),
                  &len);
    // Announced on stdout so scripted clients can scrape the
    // kernel-assigned port when --listen 0 was asked for.
    std::printf("listening on %d\n", ntohs(bound.sin_port));
    std::fflush(stdout);

    for (;;) {
        const int fd = ::accept(listener, nullptr, nullptr);
        if (fd < 0)
            continue;
        std::thread(serveConnection, std::ref(service), fd).detach();
    }
}

} // namespace mvp::svc
