/**
 * @file
 * Tests for loop unrolling: structural correctness, preservation of the
 * memory access stream and register dataflow, and the miss-ratio
 * splitting effect the paper's §4.3 suggests unrolling for.
 */

#include <gtest/gtest.h>

#include <vector>

#include "cme/solver.hh"
#include "ddg/ddg.hh"
#include "ir/builder.hh"
#include "ir/transform.hh"
#include "machine/presets.hh"
#include "sched/scheduler.hh"
#include "sim/simulator.hh"
#include "workloads/workloads.hh"

namespace mvp::ir
{
namespace
{

LoopNest
streamLoop(std::int64_t n = 64)
{
    LoopNestBuilder b("stream");
    b.loop("r", 0, 4);
    b.loop("i", 0, n);
    const auto A = b.arrayAt("A", {n}, 0x10000);
    const auto B = b.arrayAt("B", {n}, 0x14000);
    const auto l = b.load(A, {affineVar(1)}, "l");
    const auto acc = b.op(Opcode::FAdd, {use(l), use(b.nextOpId(), 1)},
                          "acc");
    b.store(B, {affineVar(1)}, use(acc), "s");
    return b.build();
}

/** Full (address, is_store) trace of a nest in execution order. */
std::vector<std::pair<Addr, bool>>
accessTrace(const LoopNest &nest)
{
    std::vector<std::pair<Addr, bool>> trace;
    const IterationSpace space(nest);
    std::vector<std::int64_t> ivs;
    for (std::int64_t p = 0; p < space.points(); ++p) {
        space.at(p, ivs);
        for (const auto &op : nest.ops())
            if (op.isMemory())
                trace.emplace_back(nest.addressOf(*op.memRef, ivs),
                                   op.isStore());
    }
    return trace;
}

TEST(Unroll, FactorOneIsIdentity)
{
    const auto nest = streamLoop();
    const auto same = unrollInner(nest, 1);
    EXPECT_EQ(same.size(), nest.size());
    EXPECT_EQ(same.name(), nest.name());
}

TEST(Unroll, StructuralShape)
{
    const auto nest = streamLoop();
    const auto u4 = unrollInner(nest, 4);
    EXPECT_EQ(u4.size(), 4 * nest.size());
    EXPECT_EQ(u4.innerTripCount(), nest.innerTripCount() / 4);
    EXPECT_EQ(u4.outerExecutions(), nest.outerExecutions());
    EXPECT_EQ(u4.innerLoop().step, 4);
    EXPECT_EQ(u4.name(), "stream.u4");
}

TEST(Unroll, PreservesTheAccessStream)
{
    const auto nest = streamLoop();
    for (int factor : {2, 4, 8})
        EXPECT_EQ(accessTrace(unrollInner(nest, factor)),
                  accessTrace(nest))
            << "factor " << factor;
}

TEST(Unroll, RemapsLoopCarriedOperands)
{
    const auto nest = streamLoop();
    const auto u4 = unrollInner(nest, 4);
    // acc copies: copy 0 reads copy 3 of the previous new iteration;
    // copies 1..3 read the previous copy at distance 0.
    const auto n = static_cast<OpId>(nest.size());
    const OpId acc0 = 1;
    const auto &a0 = u4.op(acc0);
    EXPECT_EQ(a0.inputs[1].producer, 3 * n + 1);
    EXPECT_EQ(a0.inputs[1].distance, 1);
    const auto &a2 = u4.op(2 * n + 1);
    EXPECT_EQ(a2.inputs[1].producer, 1 * n + 1);
    EXPECT_EQ(a2.inputs[1].distance, 0);
}

TEST(Unroll, IndivisibleTripIsFatal)
{
    const auto nest = streamLoop(30);
    EXPECT_EXIT((void)unrollInner(nest, 4),
                ::testing::ExitedWithCode(1), "not divisible");
}

TEST(Unroll, SplitsMissRatioAcrossInstances)
{
    // §4.3: after unrolling by the line length, one instance of a
    // unit-stride load always misses and the others (nearly) always
    // hit. A 4 KB array swept through a 2 KB cache never stays
    // resident, so every line is re-fetched each sweep — by instance 0,
    // which sits on the line boundary.
    const auto nest = streamLoop(1024);
    const auto u8 = unrollInner(nest, 8);
    cme::CmeAnalysis cme(u8);
    const CacheGeom geom{2048, 32, 1};
    std::vector<OpId> loads;
    for (const auto &op : u8.ops())
        if (op.isLoad())
            loads.push_back(op.id);
    ASSERT_EQ(loads.size(), 8u);
    EXPECT_GT(cme.missRatio(loads, loads[0], geom), 0.8);
    for (std::size_t k = 1; k < loads.size(); ++k)
        EXPECT_LT(cme.missRatio(loads, loads[k], geom), 0.2)
            << "instance " << k;
}

TEST(Unroll, UnrolledLoopSchedulesAndSimulates)
{
    const auto nest = streamLoop(64);
    const auto u4 = unrollInner(nest, 4);
    const auto machine = makeTwoCluster();
    const auto g0 = ddg::Ddg::build(nest, machine);
    const auto g4 = ddg::Ddg::build(u4, machine);
    const auto r0 = sched::scheduleBaseline(g0, machine);
    const auto r4 = sched::scheduleBaseline(g4, machine);
    ASSERT_TRUE(r0.ok && r4.ok);
    EXPECT_EQ(r4.schedule.validate(g4, machine), "");
    const auto s0 = sim::simulateLoop(g0, r0.schedule, machine);
    const auto s4 = sim::simulateLoop(g4, r4.schedule, machine);
    // Same work: identical op and access counts.
    EXPECT_EQ(s4.opsExecuted, s0.opsExecuted);
    EXPECT_EQ(s4.memAccesses, s0.memAccesses);
    // The serial accumulator dominates both: II=2 per element in the
    // original, II=8 per 4 elements after unrolling. Compute cycles per
    // element must agree within prologue/epilogue noise.
    const double per_elem0 = static_cast<double>(s0.computeCycles) /
                             static_cast<double>(s0.iterations);
    const double per_elem4 = static_cast<double>(s4.computeCycles) /
                             static_cast<double>(4 * s4.iterations);
    EXPECT_NEAR(per_elem4 / per_elem0, 1.0, 0.2);
}

TEST(Unroll, WorkloadLoopSurvivesFullPipeline)
{
    // Unrolling must compose with the whole stack on a real suite loop
    // (su2cor.gather has a 512-iteration inner loop and a reduction).
    const auto bench = workloads::benchmarkByName("su2cor");
    const auto &orig = bench.loops[0];
    const auto u4 = unrollInner(orig, 4);
    u4.validate();
    EXPECT_EQ(accessTrace(u4), accessTrace(orig));

    const auto machine = makeFourCluster();
    const auto g = ddg::Ddg::build(u4, machine);
    cme::CmeAnalysis cme(u4);
    const auto r = sched::scheduleRmca(g, machine, 0.25, cme);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.schedule.validate(g, machine), "");
    const auto sim = sim::simulateLoop(g, r.schedule, machine);
    EXPECT_GT(sim.opsExecuted, 0);
}

} // namespace
} // namespace mvp::ir
