/**
 * @file
 * The SAT scheduling backend: the embedded CDCL engine on crafted CNF
 * (propagation, learning, assumption cores, budget degradation), the
 * placement encoder's round trip through the full schedule checker,
 * and the engine-agreement contracts the differential pipeline rides
 * on:
 *
 *  - sat II == exact II (and the same lower bound and certificate) on
 *    all 96 builtin loop x machine combos;
 *  - gap tables byte-identical at jobs 1, 2 and 8;
 *  - an expired wall-clock budget degrades through the exact engine's
 *    error contract, verbatim;
 *  - the portfolio answers identically with the SAT probe on or off.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ddg/ddg.hh"
#include "harness/driver.hh"
#include "harness/gapstudy.hh"
#include "machine/presets.hh"
#include "sched/backend.hh"
#include "sched/exact/bnb.hh"
#include "sched/exact/portfolio.hh"
#include "sched/sat/sat.hh"
#include "sched/sat/solver.hh"
#include "workloads/workloads.hh"

namespace mvp::sched
{
namespace
{

using sat::mkLit;
using sat::SolveResult;

/** Pigeonhole principle PHP(n+1, n): UNSAT, and for n >= 3 hard
 * enough that resolution needs genuine conflict analysis. */
void
addPigeonhole(sat::Solver &s, int pigeons, int holes)
{
    std::vector<std::vector<sat::Var>> p(
        static_cast<std::size_t>(pigeons));
    for (auto &row : p)
        for (int h = 0; h < holes; ++h)
            row.push_back(s.newVar());
    for (int i = 0; i < pigeons; ++i) {
        std::vector<sat::Lit> some;
        for (int h = 0; h < holes; ++h)
            some.push_back(mkLit(p[static_cast<std::size_t>(i)]
                                  [static_cast<std::size_t>(h)]));
        ASSERT_TRUE(s.addClause(some));
    }
    for (int h = 0; h < holes; ++h)
        for (int i = 0; i < pigeons; ++i)
            for (int j = i + 1; j < pigeons; ++j)
                ASSERT_TRUE(s.addClause(
                    {~mkLit(p[static_cast<std::size_t>(i)]
                             [static_cast<std::size_t>(h)]),
                     ~mkLit(p[static_cast<std::size_t>(j)]
                             [static_cast<std::size_t>(h)])}));
}

TEST(CdclSolver, UnitPropagationChains)
{
    sat::Solver s;
    const sat::Var a = s.newVar();
    const sat::Var b = s.newVar();
    const sat::Var c = s.newVar();
    ASSERT_TRUE(s.addClause({mkLit(a)}));
    ASSERT_TRUE(s.addClause({~mkLit(a), mkLit(b)}));
    ASSERT_TRUE(s.addClause({~mkLit(b), mkLit(c)}));
    ASSERT_EQ(s.solve(), SolveResult::Sat);
    EXPECT_TRUE(s.modelValue(a));
    EXPECT_TRUE(s.modelValue(b));
    EXPECT_TRUE(s.modelValue(c));
    // Everything is forced from the root: no branching happened.
    EXPECT_EQ(s.stats().decisions, 0);
    EXPECT_GE(s.stats().propagations, 3);
}

TEST(CdclSolver, LearnsFromConflictsAndRefutes)
{
    sat::Solver s;
    addPigeonhole(s, 4, 3);
    ASSERT_EQ(s.solve(), SolveResult::Unsat);
    // A refutation of PHP cannot be pure propagation: the engine must
    // have analysed conflicts and learned clauses along the way.
    EXPECT_GT(s.stats().conflicts, 0);
    EXPECT_GT(s.stats().learned, 0);
    EXPECT_GT(s.stats().decisions, 0);
    // Root-level UNSAT is permanent.
    EXPECT_EQ(s.solve(), SolveResult::Unsat);
}

TEST(CdclSolver, SatisfiableModelRespectsEveryClause)
{
    // 3 pigeons into 3 holes is satisfiable; the model must place
    // each pigeon and never share a hole.
    sat::Solver s;
    addPigeonhole(s, 3, 3);
    ASSERT_EQ(s.solve(), SolveResult::Sat);
    for (int i = 0; i < 3; ++i) {
        int placed = 0;
        for (int h = 0; h < 3; ++h)
            placed += s.modelValue(static_cast<sat::Var>(i * 3 + h));
        EXPECT_GE(placed, 1) << "pigeon " << i;
    }
    for (int h = 0; h < 3; ++h) {
        int occupants = 0;
        for (int i = 0; i < 3; ++i)
            occupants += s.modelValue(static_cast<sat::Var>(i * 3 + h));
        EXPECT_LE(occupants, 1) << "hole " << h;
    }
}

TEST(CdclSolver, AssumptionCoresNameTheCulprits)
{
    sat::Solver s;
    const sat::Var x = s.newVar();
    const sat::Var y = s.newVar();
    const sat::Var z = s.newVar();
    ASSERT_TRUE(s.addClause({~mkLit(x), ~mkLit(y)}));
    ASSERT_EQ(s.solve({mkLit(x), mkLit(y), mkLit(z)}),
              SolveResult::Unsat);
    const auto &core = s.conflictCore();
    ASSERT_FALSE(core.empty());
    for (const sat::Lit l : core) {
        EXPECT_TRUE(sat::var(l) == x || sat::var(l) == y)
            << "core var " << sat::var(l);
        EXPECT_NE(sat::var(l), z);
    }
    // The formula itself is satisfiable: dropping an assumption
    // recovers Sat, on the same incremental solver.
    EXPECT_EQ(s.solve({mkLit(x), mkLit(z)}), SolveResult::Sat);
    EXPECT_TRUE(s.modelValue(x));
    EXPECT_FALSE(s.modelValue(y));
}

TEST(CdclSolver, ConflictBudgetDegradesToUnknown)
{
    sat::Solver s;
    addPigeonhole(s, 6, 5);
    s.setConflictBudget(1);
    EXPECT_EQ(s.solve(), SolveResult::Unknown);
    EXPECT_TRUE(s.budgetHit());
    // Lifting the cap finishes the refutation; nothing was corrupted
    // by the aborted attempt.
    s.setConflictBudget(0);
    EXPECT_EQ(s.solve(), SolveResult::Unsat);
}

TEST(CdclSolver, SolvesAreBitReproducible)
{
    // Two fresh solvers fed the same clause sequence take the same
    // path: identical models and identical work counters.
    sat::Solver a, b;
    addPigeonhole(a, 3, 3);
    addPigeonhole(b, 3, 3);
    ASSERT_EQ(a.solve(), SolveResult::Sat);
    ASSERT_EQ(b.solve(), SolveResult::Sat);
    for (sat::Var v = 0; v < 9; ++v)
        EXPECT_EQ(a.modelValue(v), b.modelValue(v)) << "var " << v;
    EXPECT_EQ(a.stats().decisions, b.stats().decisions);
    EXPECT_EQ(a.stats().conflicts, b.stats().conflicts);
    EXPECT_EQ(a.stats().propagations, b.stats().propagations);
}

TEST(SatBackend, RegisteredNextToTheBnbAlias)
{
    auto &reg = BackendRegistry::instance();
    ASSERT_TRUE(reg.has("sat"));
    ASSERT_TRUE(reg.has("bnb"));
    EXPECT_EQ(reg.create("sat")->name(), "sat");
    EXPECT_EQ(reg.create("bnb")->name(), "bnb");
}

/** The headline contract: both exact engine families certify the same
 * minimal II, lower bound and certificate on every builtin combo. The
 * schedules themselves may differ (the CDCL engine runs no pressure
 * tiebreak), so placements are deliberately not compared. */
TEST(SatBackend, CertifiesTheSameIIAsTheBranchAndBound)
{
    int solved = 0;
    for (const auto &wl : workloads::allLoops()) {
        for (int nc : {1, 2, 4}) {
            const auto machine = makeConfig(nc);
            const auto graph = ddg::Ddg::build(wl.nest, machine);
            const std::string label = wl.benchmark + "/" +
                                      wl.nest.name() + "/c" +
                                      std::to_string(nc);
            // No wall clock on either engine: under TSan/Debug the
            // slowest combos outlive the default budget, and this
            // test compares certificates, not degradation points.
            exact::ExactOptions bopt;
            bopt.timeBudgetMs = -1;
            SatOptions sopt;
            sopt.timeBudgetMs = -1;
            const auto bnb =
                exact::scheduleExact(graph, machine, bopt);
            const auto satr = scheduleSatExact(graph, machine, sopt);
            ASSERT_EQ(bnb.ok, satr.ok) << label;
            ASSERT_TRUE(satr.ok) << label << ": " << satr.error;
            EXPECT_EQ(satr.schedule.ii(), bnb.schedule.ii()) << label;
            EXPECT_EQ(satr.stats.iiLowerBound, bnb.stats.iiLowerBound)
                << label;
            EXPECT_EQ(satr.stats.provenOptimal, bnb.stats.provenOptimal)
                << label;
            EXPECT_EQ(satr.stats.mii, bnb.stats.mii) << label;
            ++solved;
        }
    }
    EXPECT_EQ(solved, 96);
}

/** Encoder round trip: every decoded model must survive the full
 * schedule checker (dependences, FU capacity, buses, MaxLive) — the
 * encoding is allowed to under-approximate only where the backend
 * blocks and re-solves, never in what it finally returns. */
TEST(SatBackend, DecodedModelsPassFullValidation)
{
    for (const char *name : {"tomcatv", "swim", "apsi"}) {
        const auto bench = workloads::benchmarkByName(name);
        for (const auto &nest : bench.loops) {
            for (int nc : {2, 4}) {
                const auto machine = makeConfig(nc);
                const auto graph = ddg::Ddg::build(nest, machine);
                const std::string label = std::string(name) + "/" +
                                          nest.name() + "/c" +
                                          std::to_string(nc);
                const auto r = scheduleSatExact(graph, machine, {});
                ASSERT_TRUE(r.ok) << label << ": " << r.error;
                EXPECT_EQ(r.schedule.validate(graph, machine), "")
                    << label;
                EXPECT_EQ(r.stats.comms,
                          static_cast<int>(r.schedule.numComms()))
                    << label;
            }
        }
    }
}

/** The determinism contract behind every report: the sat gap table is
 * a pure function of (workloads, machine, options), not of how many
 * workers the sweep sharded loops across. */
TEST(SatBackend, GapTableByteIdenticalAcrossJobCounts)
{
    harness::Workbench bench({"tomcatv", "swim", "hydro2d"});
    const auto machine = makeTwoCluster();

    std::string reference;
    for (int jobs : {1, 2, 8}) {
        harness::ParallelDriver driver(jobs);
        harness::GapOptions options;
        options.exactBackend = "sat";
        const auto study =
            harness::runGapStudy(bench, machine, options, driver);
        EXPECT_EQ(study.unknown(), 0) << "jobs " << jobs;
        const std::string table = harness::formatGapTable(study);
        if (reference.empty())
            reference = table;
        else
            EXPECT_EQ(table, reference) << "jobs " << jobs;
    }
}

/** An expired wall-clock budget reports "gap unknown" through the
 * exact engine's contract, in the exact engine's words — reports diff
 * the backends verbatim. */
TEST(SatBackend, StarvedBudgetMatchesTheSerialContract)
{
    const auto bench = workloads::makeApplu();
    const auto machine = makeFourCluster();
    const auto graph = ddg::Ddg::build(bench.loops[1], machine);
    SchedulerOptions opt;
    opt.timeBudgetMs = 0;
    const auto r = scheduleWithBackend("sat", graph, machine, opt);
    EXPECT_FALSE(r.ok);
    EXPECT_TRUE(r.stats.budgetExhausted);
    EXPECT_FALSE(r.stats.provenOptimal);

    const auto s = scheduleWithBackend("exact", graph, machine, opt);
    EXPECT_FALSE(s.ok);
    EXPECT_EQ(r.error, s.error);

    // Verify mode degrades to "gap unknown", not to a failure.
    SchedulerOptions vopt;
    vopt.timeBudgetMs = 0;
    vopt.exactBackend = "sat";
    const auto v = scheduleWithBackend("verify", graph, machine, vopt);
    ASSERT_TRUE(v.ok) << v.error;
    EXPECT_FALSE(v.stats.gapKnown);
}

/** The deterministic conflict cap is the CDCL analogue of the node
 * budget: capped out means Unknown ("gap unknown"), never a wrong
 * answer, and the cap's effect is reproducible. */
TEST(SatBackend, ConflictCapNeverChangesTheAnswer)
{
    const auto bench = workloads::makeSwim();
    const auto machine = makeFourCluster();
    const auto graph = ddg::Ddg::build(bench.loops[0], machine);
    const auto ref = scheduleSatExact(graph, machine, {});
    ASSERT_TRUE(ref.ok);
    for (const std::int64_t cap : {std::int64_t{1}, std::int64_t{0}}) {
        SatOptions o;
        o.conflictBudget = cap;
        const auto r = scheduleSatExact(graph, machine, o);
        if (!r.ok) {
            // Capped out before settling: the documented degradation.
            EXPECT_TRUE(r.stats.budgetExhausted);
            continue;
        }
        EXPECT_EQ(r.schedule.ii(), ref.schedule.ii()) << "cap " << cap;
        EXPECT_EQ(r.schedule.validate(graph, machine), "");
    }
}

/** The portfolio's answer is independent of the SAT probe: with the
 * probe on or off, every field and placement matches the serial
 * engine (first-certifier-wins only changes who proves it). */
TEST(SatBackend, PortfolioAgreesWithAndWithoutTheSatProbe)
{
    harness::ParallelDriver pool(4);
    for (const char *name : {"tomcatv", "applu"}) {
        const auto bench = workloads::benchmarkByName(name);
        for (const auto &nest : bench.loops) {
            for (int nc : {2, 4}) {
                const auto machine = makeConfig(nc);
                const auto graph = ddg::Ddg::build(nest, machine);
                const std::string label = std::string(name) + "/" +
                                          nest.name() + "/c" +
                                          std::to_string(nc);
                const auto serial =
                    exact::scheduleExact(graph, machine);
                for (const bool probe : {false, true}) {
                    exact::ExactOptions o;
                    o.satProbe = probe;
                    SchedContext ctx;
                    const auto port = exact::scheduleExactPortfolio(
                        graph, machine, o, pool, ctx);
                    ASSERT_EQ(serial.ok, port.ok) << label;
                    ASSERT_TRUE(port.ok) << label << ": " << port.error;
                    EXPECT_EQ(port.schedule.ii(), serial.schedule.ii())
                        << label << " probe " << probe;
                    EXPECT_EQ(port.stats.iiLowerBound,
                              serial.stats.iiLowerBound)
                        << label << " probe " << probe;
                    EXPECT_EQ(port.stats.provenOptimal,
                              serial.stats.provenOptimal)
                        << label << " probe " << probe;
                    for (std::size_t v = 0; v < graph.size(); ++v) {
                        const auto ps =
                            serial.schedule.placed(static_cast<OpId>(v));
                        const auto pp =
                            port.schedule.placed(static_cast<OpId>(v));
                        EXPECT_EQ(ps.time, pp.time)
                            << label << " op " << v;
                        EXPECT_EQ(ps.cluster, pp.cluster)
                            << label << " op " << v;
                    }
                }
            }
        }
    }
}

} // namespace
} // namespace mvp::sched
