/**
 * @file
 * Tests for the SPECfp95-like workload suites: structural validity,
 * the documented conflict layouts, and schedulability of every loop on
 * every Table-1 machine (the property the harness relies on).
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "cme/solver.hh"
#include "ddg/ddg.hh"
#include "machine/presets.hh"
#include "sched/scheduler.hh"
#include "workloads/workloads.hh"

namespace mvp::workloads
{
namespace
{

TEST(Workloads, AllEightSuitesPresent)
{
    const auto all = allBenchmarks();
    ASSERT_EQ(all.size(), 8u);
    const auto names = benchmarkNames();
    for (std::size_t i = 0; i < all.size(); ++i)
        EXPECT_EQ(all[i].name, names[i]);
}

TEST(Workloads, LookupByName)
{
    const auto b = benchmarkByName("swim");
    EXPECT_EQ(b.name, "swim");
    EXPECT_GE(b.loops.size(), 3u);
    // Unknown names die through the shared NamedFactoryTable error
    // path: the component kind plus the list of valid names.
    EXPECT_EXIT((void)benchmarkByName("nonesuch"),
                ::testing::ExitedWithCode(1),
                "unknown workload 'nonesuch' \\(known: applu, apsi, "
                "hydro2d, mgrid, su2cor, swim, tomcatv, turb3d\\)");
    // Unknown *schemes* name the known schemes instead.
    EXPECT_EXIT((void)benchmarkByName("ftp:loops"),
                ::testing::ExitedWithCode(1),
                "unknown workload scheme.*file:<path>, gen:<spec>");
}

TEST(Workloads, EveryLoopValidatesAndIsNonTrivial)
{
    for (const auto &bench : allBenchmarks()) {
        EXPECT_GE(bench.loops.size(), 4u) << bench.name;
        for (const auto &loop : bench.loops) {
            loop.validate();   // fatal on violation
            EXPECT_GE(loop.size(), 3u) << loop.name();
            EXPECT_FALSE(loop.memoryOps().empty()) << loop.name();
            // The paper schedules loops with more than 4 iterations.
            EXPECT_GT(loop.innerTripCount(), 4) << loop.name();
            EXPECT_GE(loop.outerExecutions(), 1) << loop.name();
        }
    }
}

TEST(Workloads, LoopNamesAreUnique)
{
    std::set<std::string> names;
    for (const auto &bench : allBenchmarks())
        for (const auto &loop : bench.loops)
            EXPECT_TRUE(names.insert(loop.name()).second) << loop.name();
}

TEST(Workloads, ConflictPairsShareCacheSets)
{
    // The suites place deliberately-conflicting arrays at 8 KB
    // multiples; verify the property holds for the tomcatv X/Y pair in
    // all three per-cluster geometries.
    const auto bench = benchmarkByName("tomcatv");
    const auto &nest = bench.loops[0];
    const auto &x = nest.array(0);
    const auto &y = nest.array(1);
    for (std::int64_t cap : {2048, 4096, 8192}) {
        const CacheGeom geom{cap, 32, 1};
        EXPECT_EQ(geom.setOf(x.base), geom.setOf(y.base)) << cap;
    }
}

TEST(Workloads, ArraysDisjointAndConsistentAcrossLoops)
{
    // Arrays shared between the loops of a suite must sit at identical
    // addresses everywhere, and no two distinct arrays may overlap in
    // memory (overlap would create phantom reuse the DDG knows nothing
    // about).
    for (const auto &bench : allBenchmarks()) {
        std::map<std::string, std::pair<Addr, Addr>> ranges;
        for (const auto &loop : bench.loops) {
            for (const auto &arr : loop.arrays()) {
                const auto range = std::make_pair(
                    arr.base,
                    arr.base + static_cast<Addr>(arr.sizeBytes()));
                const auto it = ranges.find(arr.name);
                if (it != ranges.end()) {
                    EXPECT_EQ(it->second, range)
                        << bench.name << "." << arr.name;
                } else {
                    ranges.emplace(arr.name, range);
                }
            }
        }
        for (auto i = ranges.begin(); i != ranges.end(); ++i) {
            for (auto j = std::next(i); j != ranges.end(); ++j) {
                const bool overlap = i->second.first < j->second.second &&
                                     j->second.first < i->second.second;
                EXPECT_FALSE(overlap) << bench.name << ": " << i->first
                                      << " vs " << j->first;
            }
        }
    }
}

TEST(Workloads, SuitesContainRecurrences)
{
    // Reductions / eliminations appear throughout SPECfp95; make sure
    // the suites exercise them (RecMII > 1 somewhere).
    const auto machine = makeUnified();
    int recurrence_loops = 0;
    for (const auto &bench : allBenchmarks())
        for (const auto &loop : bench.loops)
            if (ddg::Ddg::build(loop, machine).recMii() > 1)
                ++recurrence_loops;
    EXPECT_GE(recurrence_loops, 8);
}

TEST(Workloads, MemoryCarriedRecurrenceInApplu)
{
    const auto bench = benchmarkByName("applu");
    const auto machine = makeUnified();
    bool found = false;
    for (const auto &loop : bench.loops) {
        const auto g = ddg::Ddg::build(loop, machine);
        for (const auto &e : g.edges())
            if (e.kind == ddg::EdgeKind::MemFlow && e.distance >= 1)
                found = true;
    }
    EXPECT_TRUE(found);
}

// ------------------------------------- schedulability on every machine

struct WorkloadCase
{
    std::string bench;
    int clusters;
};

class WorkloadSchedulable
    : public ::testing::TestWithParam<WorkloadCase>
{
};

TEST_P(WorkloadSchedulable, AllLoopsScheduleAndValidate)
{
    const auto param = GetParam();
    const auto bench = benchmarkByName(param.bench);
    const auto machine = makeConfig(param.clusters);
    for (const auto &loop : bench.loops) {
        const auto g = ddg::Ddg::build(loop, machine);
        cme::CmeAnalysis cme(loop);
        for (const bool rmca : {false, true}) {
            sched::SchedulerOptions opt;
            opt.memoryAware = rmca;
            opt.missThreshold = rmca ? 0.25 : 1.0;
            opt.locality = &cme;
            auto r = sched::ClusteredModuloScheduler(g, machine, opt)
                         .run();
            ASSERT_TRUE(r.ok)
                << loop.name() << " on " << machine.name << ": "
                << r.error;
            EXPECT_EQ(r.schedule.validate(g, machine), "")
                << loop.name() << " rmca=" << rmca;
            EXPECT_GE(r.schedule.ii(), r.stats.mii);
        }
    }
}

std::vector<WorkloadCase>
allCases()
{
    std::vector<WorkloadCase> cases;
    for (const auto &name : benchmarkNames())
        for (int clusters : {1, 2, 4})
            cases.push_back({name, clusters});
    return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Suites, WorkloadSchedulable, ::testing::ValuesIn(allCases()),
    [](const auto &info) {
        return info.param.bench + "_" +
               std::to_string(info.param.clusters) + "c";
    });

} // namespace
} // namespace mvp::workloads
