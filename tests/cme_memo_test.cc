/**
 * @file
 * Memo-consistency tests for the hashed-key locality caches.
 *
 * The CME solver and the exact oracle replaced their string memo keys
 * with FNV-hashed struct keys (cme/setkey.hh) plus an open-addressing
 * table in the solver. These tests pin the contract the scheduler relies
 * on: a memoised answer is bit-identical to a fresh instance's answer,
 * regardless of query order, set permutation, duplicate ops in the set,
 * or how many entries the table has absorbed (growth/rehash included).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "cme/oracle.hh"
#include "cme/provider.hh"
#include "cme/setkey.hh"
#include "cme/solver.hh"
#include "cme/stream.hh"
#include "common/random.hh"
#include "ir/builder.hh"

namespace mvp::cme
{
namespace
{

using namespace mvp::ir;

const CacheGeom GEOM_2K{2048, 32, 1};
const CacheGeom GEOM_4K{4096, 32, 1};

/** Several interfering references so distinct sets answer differently. */
LoopNest
interferenceLoop()
{
    LoopNestBuilder b("memo");
    b.loop("r", 0, 8);
    b.loop("i", 0, 512);
    const auto A = b.arrayAt("A", {512}, 0x10000);
    const auto B = b.arrayAt("B", {512}, 0x10000 + 0x2000);
    const auto C = b.arrayAt("C", {512}, 0x10000 + 0x4000);
    const auto la = b.load(A, {affineVar(1)}, "la");
    const auto lb = b.load(B, {affineVar(1)}, "lb");
    const auto lc = b.load(C, {affineVar(1)}, "lc");
    const auto m = b.op(Opcode::FMul, {use(la), use(lb)});
    const auto s = b.op(Opcode::FAdd, {use(m), use(lc)});
    b.store(A, {affineVar(1)}, use(s));
    return b.build();
}

TEST(CmeMemo, MemoisedEqualsFresh)
{
    const auto nest = interferenceLoop();
    const auto mem = nest.memoryOps();
    CmeAnalysis warm(nest);

    // Warm the memo with every subset query we are about to replay.
    for (OpId op : mem) {
        (void)warm.missRatio(mem, op, GEOM_2K);
        (void)warm.missRatio(mem, op, GEOM_4K);
    }
    (void)warm.missesPerIteration(mem, GEOM_2K);
    const std::size_t queries_after_warmup = warm.queriesSolved();

    for (OpId op : mem) {
        CmeAnalysis fresh(nest);
        EXPECT_EQ(warm.missRatio(mem, op, GEOM_2K),
                  fresh.missRatio(mem, op, GEOM_2K));
        EXPECT_EQ(warm.missRatio(mem, op, GEOM_4K),
                  fresh.missRatio(mem, op, GEOM_4K));
    }
    {
        CmeAnalysis fresh(nest);
        EXPECT_EQ(warm.missesPerIteration(mem, GEOM_2K),
                  fresh.missesPerIteration(mem, GEOM_2K));
    }
    // Every replay above must have been served from the memo.
    EXPECT_EQ(warm.queriesSolved(), queries_after_warmup);
}

TEST(CmeMemo, SetOrderAndDuplicatesAreCanonicalised)
{
    const auto nest = interferenceLoop();
    const auto mem = nest.memoryOps();
    ASSERT_GE(mem.size(), 3u);

    CmeAnalysis cme(nest);
    const double ref = cme.missRatio(mem, mem[0], GEOM_2K);
    const double ref_set = cme.missesPerIteration(mem, GEOM_2K);

    std::vector<OpId> shuffled = mem;
    std::reverse(shuffled.begin(), shuffled.end());
    EXPECT_EQ(cme.missRatio(shuffled, mem[0], GEOM_2K), ref);
    EXPECT_EQ(cme.missesPerIteration(shuffled, GEOM_2K), ref_set);

    std::vector<OpId> dup = mem;
    dup.push_back(mem[1]);
    dup.push_back(mem[0]);
    EXPECT_EQ(cme.missRatio(dup, mem[0], GEOM_2K), ref);
    EXPECT_EQ(cme.missesPerIteration(dup, GEOM_2K), ref_set);

    // op absent from the set vector == op present (it joins the set).
    std::vector<OpId> without;
    for (OpId op : mem)
        if (op != mem[0])
            without.push_back(op);
    EXPECT_EQ(cme.missRatio(without, mem[0], GEOM_2K), ref);
}

TEST(CmeMemo, OracleMemoMatchesFresh)
{
    const auto nest = interferenceLoop();
    const auto mem = nest.memoryOps();

    CacheOracle warm(nest);
    (void)warm.missesPerIteration(mem, GEOM_2K);
    for (OpId op : mem) {
        CacheOracle fresh(nest);
        EXPECT_EQ(warm.missRatio(mem, op, GEOM_2K),
                  fresh.missRatio(mem, op, GEOM_2K));
    }
    std::vector<OpId> shuffled = mem;
    std::reverse(shuffled.begin(), shuffled.end());
    EXPECT_EQ(warm.missesPerIteration(shuffled, GEOM_2K),
              warm.missesPerIteration(mem, GEOM_2K));
}

TEST(CmeMemo, RatioMemoSurvivesGrowth)
{
    // Push the open-addressing table through several growth cycles and
    // verify every stored answer is still retrievable and correct.
    detail::RatioMemo memo;
    std::vector<OpId> set{1, 2, 3};
    const CacheGeom geom = GEOM_2K;
    constexpr int N = 1000;
    for (int i = 0; i < N; ++i) {
        set[0] = static_cast<OpId>(i);
        const detail::QueryKeyRef ref{detail::queryHash(geom, set[0], set),
                                      &geom, set[0], &set};
        ASSERT_EQ(memo.find(ref), nullptr);
        memo.insert(ref, {static_cast<double>(i) * 0.5,
                          static_cast<double>(i) * 0.01});
    }
    EXPECT_EQ(memo.size(), static_cast<std::size_t>(N));
    for (int i = 0; i < N; ++i) {
        set[0] = static_cast<OpId>(i);
        const detail::QueryKeyRef ref{detail::queryHash(geom, set[0], set),
                                      &geom, set[0], &set};
        const detail::RatioValue *hit = memo.find(ref);
        ASSERT_NE(hit, nullptr);
        EXPECT_EQ(hit->ratio, static_cast<double>(i) * 0.5);
        EXPECT_EQ(hit->ciHalfWidth, static_cast<double>(i) * 0.01);
    }
    // A different geometry with the same ops must miss.
    const CacheGeom other = GEOM_4K;
    const detail::QueryKeyRef ref{detail::queryHash(other, set[0], set),
                                  &other, set[0], &set};
    EXPECT_EQ(memo.find(ref), nullptr);
}

TEST(StreamCache, LinesMatchDirectAddressing)
{
    const auto nest = interferenceLoop();
    const ir::IterationSpace space(nest);
    StreamCache cache(nest);
    ASSERT_EQ(cache.points(), space.points());

    std::vector<std::int64_t> ivs;
    for (OpId op : nest.memoryOps()) {
        const LineStream &stream = cache.lines(op, GEOM_2K.lineBytes);
        ASSERT_EQ(stream.lines.size(),
                  static_cast<std::size_t>(space.points()));
        for (std::int64_t p = 0; p < space.points(); ++p) {
            space.at(p, ivs);
            const Addr addr =
                nest.addressOf(*nest.op(op).memRef, ivs);
            EXPECT_EQ(stream.lines[static_cast<std::size_t>(p)],
                      GEOM_2K.lineOf(addr))
                << "op " << op << " point " << p;
        }
    }
    // Two geometries with the same line size share one stream per op.
    EXPECT_EQ(&cache.lines(nest.memoryOps()[0], GEOM_2K.lineBytes),
              &cache.lines(nest.memoryOps()[0], GEOM_4K.lineBytes));
}

TEST(StreamCache, BucketsPartitionTheStreamChronologically)
{
    const auto nest = interferenceLoop();
    StreamCache cache(nest);
    const std::int64_t num_sets = GEOM_2K.numSets();

    for (OpId op : nest.memoryOps()) {
        const LineStream &stream = cache.lines(op, GEOM_2K.lineBytes);
        const SetBuckets &buckets = cache.buckets(op, GEOM_2K);
        ASSERT_EQ(buckets.offsets.size(),
                  static_cast<std::size_t>(num_sets) + 1);
        EXPECT_EQ(buckets.entries.size(), stream.lines.size());
        std::int64_t seen = 0;
        for (std::int64_t s = 0; s < num_sets; ++s) {
            std::int64_t prev_point = -1;
            for (std::int64_t e = buckets.offsets[
                     static_cast<std::size_t>(s)];
                 e < buckets.offsets[static_cast<std::size_t>(s) + 1];
                 ++e) {
                const auto &entry =
                    buckets.entries[static_cast<std::size_t>(e)];
                EXPECT_EQ(entry.line % num_sets, s);
                EXPECT_EQ(stream.lines[static_cast<std::size_t>(
                              entry.point)],
                          entry.line);
                EXPECT_GT(entry.point, prev_point);   // chronological
                prev_point = entry.point;
                ++seen;
            }
        }
        EXPECT_EQ(seen, static_cast<std::int64_t>(stream.lines.size()));
        EXPECT_EQ(buckets.touches(0),
                  buckets.offsets[1] > buckets.offsets[0]);
    }
}

TEST(StreamCache, SharedAcrossAnalysesBitIdentical)
{
    // A solver and an oracle drawing from one shared cache must answer
    // exactly like privately-cached instances — the stream is a pure
    // function of (nest, op, geometry), wherever it is materialised.
    const auto nest = interferenceLoop();
    const auto mem = nest.memoryOps();
    auto shared = std::make_shared<StreamCache>(nest);
    CmeAnalysis shared_cme(nest, {}, shared);
    CacheOracle shared_oracle(nest, shared);
    CmeAnalysis private_cme(nest);
    CacheOracle private_oracle(nest);

    for (OpId op : mem) {
        EXPECT_EQ(shared_cme.missRatio(mem, op, GEOM_2K),
                  private_cme.missRatio(mem, op, GEOM_2K));
        EXPECT_EQ(shared_oracle.missRatio(mem, op, GEOM_2K),
                  private_oracle.missRatio(mem, op, GEOM_2K));
    }
    EXPECT_EQ(shared_cme.streams().get(), shared.get());
    EXPECT_EQ(shared_oracle.streams().get(), shared.get());
    EXPECT_GT(shared->streamsBuilt(), 0u);
}

/**
 * The incremental-extension contract: growing a set one op at a time —
 * in ANY order — answers bit-identically to a from-scratch simulation
 * of each grown set. Exercised over randomised growth orders and three
 * geometries, chosen so every extension strategy runs: under the small
 * direct-mapped cache every op's footprint covers all 64 sets (the
 * dense touched-filtered walk), under the large one it covers a
 * fraction of 512 (the sparse bucket merge), and the 2-way geometry
 * exercises the set-associative LRU probe/promotion and multi-way
 * checkpoint copies.
 */
TEST(IncrementalOracle, RandomGrowthOrdersMatchFromScratch)
{
    const auto nest = interferenceLoop();
    const auto mem = nest.memoryOps();
    const CacheGeom geoms[] = {GEOM_2K, {16384, 32, 1}, {4096, 32, 2}};
    auto shared = std::make_shared<StreamCache>(nest);

    Rng rng(0xfeedULL);
    for (int trial = 0; trial < 8; ++trial) {
        // Random growth order (Fisher-Yates on the memory ops).
        std::vector<OpId> order = mem;
        for (std::size_t i = order.size(); i > 1; --i)
            std::swap(order[i - 1],
                      order[static_cast<std::size_t>(
                          rng.nextBounded(i))]);

        for (const CacheGeom &geom : geoms) {
            CacheOracle warm(nest, shared);
            std::vector<OpId> set;
            for (OpId op : order) {
                set.push_back(op);
                // From-scratch reference: a fresh oracle has no subset
                // checkpoint to extend, so it must take the full path.
                CacheOracle fresh(nest, shared);
                EXPECT_EQ(warm.missesPerIteration(set, geom),
                          fresh.missesPerIteration(set, geom));
                for (OpId q : set)
                    EXPECT_EQ(warm.missRatio(set, q, geom),
                              fresh.missRatio(set, q, geom));
                EXPECT_EQ(fresh.incrementalExtensions(), 0u);
            }
            // Every grown set beyond the first must have taken the
            // incremental path.
            EXPECT_EQ(warm.incrementalExtensions(), set.size() - 1);
            EXPECT_EQ(warm.fullSimulations(), 1u);
        }
    }
}

TEST(IncrementalOracle, CheckpointByteCapBoundsMemoryNotAnswers)
{
    // A zero cap drops every checkpoint: extension never runs (nothing
    // to extend from), yet every answer must be bit-identical — the
    // cap trades speed for memory, never values.
    const auto nest = interferenceLoop();
    const auto mem = nest.memoryOps();
    auto shared = std::make_shared<StreamCache>(nest);
    CacheOracle capped(nest, shared, /*checkpoint_byte_cap=*/0);
    CacheOracle uncapped(nest, shared);

    std::vector<OpId> set;
    for (OpId op : mem) {
        set.push_back(op);
        EXPECT_EQ(capped.missesPerIteration(set, GEOM_2K),
                  uncapped.missesPerIteration(set, GEOM_2K));
        for (OpId q : set)
            EXPECT_EQ(capped.missRatio(set, q, GEOM_2K),
                      uncapped.missRatio(set, q, GEOM_2K));
    }
    EXPECT_EQ(capped.incrementalExtensions(), 0u);
    EXPECT_EQ(capped.fullSimulations(), set.size());
    EXPECT_EQ(uncapped.incrementalExtensions(), set.size() - 1);
}

TEST(IncrementalOracle, ExtensionAgreesWithLegacyMissCounts)
{
    // The per-cache-set decomposition must reproduce the exact counts
    // the chronological simulation reports (cache_test pins absolute
    // values; this pins the two internal paths against each other op
    // by op, including stores).
    const auto nest = interferenceLoop();
    const auto mem = nest.memoryOps();
    CacheOracle warm(nest);
    // Memoise every prefix so the final query extends a checkpoint.
    std::vector<OpId> prefix;
    for (OpId op : mem) {
        prefix.push_back(op);
        (void)warm.missesPerIteration(prefix, GEOM_2K);
    }
    CacheOracle fresh(nest);
    const auto a = warm.missCounts(mem, GEOM_2K);
    const auto b = fresh.missCounts(mem, GEOM_2K);
    ASSERT_EQ(a.size(), b.size());
    for (const auto &[op, count] : b)
        EXPECT_EQ(a.at(op), count) << "op " << op;
}

TEST(LocalityRegistry, BuiltinsAndRuntimeAdd)
{
    auto &registry = LocalityRegistry::instance();
    const auto names = registry.names();
    for (const char *name : {"cme", "hybrid", "oracle"})
        EXPECT_TRUE(std::find(names.begin(), names.end(), name) !=
                    names.end())
            << name;
    EXPECT_TRUE(registry.has("cme"));
    EXPECT_FALSE(registry.has("no-such-provider"));

    const auto nest = interferenceLoop();
    for (const char *name : {"cme", "oracle", "hybrid"}) {
        const auto provider = registry.create(name);
        EXPECT_EQ(provider->name(), name);
        const auto bound = registry.bind(name, nest);
        ASSERT_NE(bound, nullptr);
        EXPECT_EQ(&bound->loop(), &nest);
    }

    // Runtime extension mirrors the scheduler-backend registry: an
    // out-of-tree provider registers under a fresh name.
    registry.add("test-oracle-alias", [] {
        return LocalityRegistry::instance().create("oracle");
    });
    EXPECT_TRUE(registry.has("test-oracle-alias"));
    const auto alias = registry.bind("test-oracle-alias", nest);
    const auto mem = nest.memoryOps();
    CacheOracle direct(nest);
    EXPECT_EQ(alias->missRatio(mem, mem[0], GEOM_2K),
              direct.missRatio(mem, mem[0], GEOM_2K));
}

TEST(HybridProvider, DeterministicAndAnchoredToItsParts)
{
    const auto nest = interferenceLoop();
    const auto mem = nest.memoryOps();
    auto shared = std::make_shared<StreamCache>(nest);
    auto &registry = LocalityRegistry::instance();

    const auto a = registry.bind("hybrid", nest, shared);
    const auto b = registry.bind("hybrid", nest, shared);
    CmeAnalysis cme(nest, {}, shared);
    CacheOracle oracle(nest, shared);

    for (const CacheGeom &geom : {GEOM_2K, GEOM_4K}) {
        for (OpId op : mem) {
            const double h = a->missRatio(mem, op, geom);
            // Bit-identical across instances: the sampled-vs-exact
            // choice is a pure function of the query key.
            EXPECT_EQ(h, b->missRatio(mem, op, geom));
            // Every answer is one of the two parents' answers.
            const double s = cme.missRatio(mem, op, geom);
            const double x = oracle.missRatio(mem, op, geom);
            EXPECT_TRUE(h == s || h == x)
                << "hybrid invented a value: " << h << " vs " << s
                << " / " << x;
        }
        const double set_h = a->missesPerIteration(mem, geom);
        EXPECT_EQ(set_h, b->missesPerIteration(mem, geom));
        EXPECT_GE(set_h, 0.0);
    }
}

TEST(CmeEstimate, ExposesConvergence)
{
    const auto nest = interferenceLoop();
    const auto mem = nest.memoryOps();
    CmeAnalysis cme(nest);
    for (OpId op : mem) {
        const RatioEstimate est = cme.estimateRatio(mem, op, GEOM_2K);
        EXPECT_EQ(est.ratio, cme.missRatio(mem, op, GEOM_2K));
        EXPECT_GE(est.ciHalfWidth, 0.0);
        // A replayed estimate comes from the memo, half-width included.
        const RatioEstimate again = cme.estimateRatio(mem, op, GEOM_2K);
        EXPECT_EQ(est.ratio, again.ratio);
        EXPECT_EQ(est.ciHalfWidth, again.ciHalfWidth);
    }
}

TEST(CmeMemo, CanonicalViewFastPaths)
{
    std::vector<OpId> scratch;
    const std::vector<OpId> sorted{1, 3, 5};

    // Already canonical, no extra: the input itself is returned.
    EXPECT_EQ(&detail::canonicalInto(scratch, sorted), &sorted);
    // Already canonical and contains the extra op: still zero-copy.
    EXPECT_EQ(&detail::canonicalInto(scratch, sorted, 3), &sorted);
    // Missing extra is inserted in order.
    {
        const auto &c = detail::canonicalInto(scratch, sorted, 4);
        EXPECT_EQ(&c, &scratch);
        EXPECT_EQ(c, (std::vector<OpId>{1, 3, 4, 5}));
    }
    // Unsorted input with duplicates is sorted and deduplicated.
    {
        const std::vector<OpId> messy{5, 1, 3, 1};
        const auto &c = detail::canonicalInto(scratch, messy, 3);
        EXPECT_EQ(&c, &scratch);
        EXPECT_EQ(c, (std::vector<OpId>{1, 3, 5}));
    }
}

} // namespace
} // namespace mvp::cme
