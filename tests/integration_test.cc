/**
 * @file
 * Integration tests reproducing the paper's qualitative claims:
 *
 *  - Section 3 / Figure 3: the memory-communication-aware partition of
 *    the motivating example beats the register-optimal one by ~1.5x.
 *  - Section 5.2: lowering the miss threshold trades compute cycles for
 *    stall cycles; at threshold 0.00 with unbounded buses the stall time
 *    nearly vanishes.
 *  - Section 5.3: RMCA >= Baseline under limited buses.
 */

#include <gtest/gtest.h>

#include "cme/solver.hh"
#include "ddg/ddg.hh"
#include "harness/motivating.hh"
#include "machine/presets.hh"
#include "sched/scheduler.hh"
#include "sim/simulator.hh"

namespace mvp
{
namespace
{

struct Fig3Run
{
    sched::ScheduleResult sched;
    sim::SimResult sim;
};

Fig3Run
runFig3(bool rmca, double threshold)
{
    static const ir::LoopNest nest = harness::motivatingLoop();
    static const MachineConfig machine = harness::motivatingMachine();
    static const ddg::Ddg graph = ddg::Ddg::build(nest, machine);
    static cme::CmeAnalysis cme(nest);

    sched::SchedulerOptions opt;
    opt.memoryAware = rmca;
    opt.missThreshold = threshold;
    opt.locality = &cme;
    Fig3Run run;
    run.sched =
        sched::ClusteredModuloScheduler(graph, machine, opt).run();
    EXPECT_TRUE(run.sched.ok) << run.sched.error;
    EXPECT_EQ(run.sched.schedule.validate(graph, machine), "");
    run.sim = sim::simulateLoop(graph, run.sched.schedule, machine);
    return run;
}

TEST(Fig3, BaselineReachesMinimalII)
{
    // The register-optimal partition achieves the unified mII of 3
    // (4 memory ops over 2 memory units).
    const auto base = runFig3(false, 1.0);
    EXPECT_EQ(base.sched.schedule.ii(), 3);
}

TEST(Fig3, RmcaTradesIIForLocality)
{
    // The memory-aware partition needs 2 register communications per
    // iteration over the single 2-cycle bus: II grows to 4 (Figure 3b).
    const auto rmca = runFig3(true, 1.0);
    EXPECT_GE(rmca.sched.schedule.ii(), 4);
    EXPECT_LE(rmca.sched.schedule.ii(), 5);
    EXPECT_GE(rmca.sched.schedule.numComms(), 2u);
}

TEST(Fig3, RmcaGroupsBLoadsAndCLoadsSeparately)
{
    const auto rmca = runFig3(true, 1.0);
    const auto &s = rmca.sched.schedule;
    // LD1 (op 0) with LD3 (op 2); LD2 (op 1) with LD4 (op 3).
    EXPECT_EQ(s.placed(0).cluster, s.placed(2).cluster);
    EXPECT_EQ(s.placed(1).cluster, s.placed(3).cluster);
    EXPECT_NE(s.placed(0).cluster, s.placed(1).cluster);
}

TEST(Fig3, BaselinePingPongsEveryIteration)
{
    const auto base = runFig3(false, 1.0);
    // B and C interleave in at least one cluster: the stall time
    // dominates (12 cycles per iteration in the paper's model).
    EXPECT_GT(base.sim.stallCycles, base.sim.computeCycles);
    const auto loads = base.sim.memStats.value("loads");
    EXPECT_GT(base.sim.memStats.value("local_misses"), loads / 2);
}

TEST(Fig3, BaselineStallsTwelveCyclesPerIteration)
{
    // Section 3 derives NCYCLE_stall(a) = 12 per iteration (bus + main
    // memory latency on every ping-pong miss); the simulator reproduces
    // the exact figure.
    const auto base = runFig3(false, 1.0);
    const double per_iter =
        static_cast<double>(base.sim.stallCycles) /
        static_cast<double>(base.sim.iterations);
    EXPECT_NEAR(per_iter, 12.0, 1.0);
}

TEST(Fig3, RmcaWinsClearly)
{
    // The paper's hand analysis derives 15N+9 vs 10N+8 = 1.5x, charging
    // the full 12-cycle penalty to every miss of schedule (b). Our
    // non-blocking caches overlap the (rarer) misses of (b), so the
    // measured advantage is 1.5x or better; the components must match
    // the paper's story: higher compute (II 3 -> 4), far lower stall.
    const auto base = runFig3(false, 1.0);
    const auto rmca = runFig3(true, 1.0);
    const double speedup =
        static_cast<double>(base.sim.totalCycles()) /
        static_cast<double>(rmca.sim.totalCycles());
    EXPECT_GT(speedup, 1.4);
    EXPECT_LT(speedup, 3.5);
    EXPECT_GE(rmca.sim.computeCycles, base.sim.computeCycles);
    EXPECT_LT(rmca.sim.stallCycles, base.sim.stallCycles / 2);
}

TEST(Fig3, RmcaMissRatioMatchesPaperArithmetic)
{
    // In the memory-aware partition each of the three streams (B, C and
    // the stored A) fetches one new line every 4 iterations: 0.75 line
    // fills per iteration, against ~2 per iteration for the ping-pong
    // partition.
    const auto rmca = runFig3(true, 1.0);
    const double iters = static_cast<double>(rmca.sim.iterations);
    const double fills =
        static_cast<double>(rmca.sim.memStats.value("memory_fills"));
    EXPECT_GT(fills / iters, 0.6);
    EXPECT_LT(fills / iters, 1.1);
    const auto base = runFig3(false, 1.0);
    EXPECT_GT(static_cast<double>(base.sim.memStats.value(
                  "memory_fills")) / iters,
              1.5);
}

// --------------------------------------------------- threshold effects

TEST(Threshold, Compute_Up_Stall_Down)
{
    // §5.2: smaller thresholds raise compute time and cut stall time.
    const auto strict = runFig3(true, 1.0);
    const auto eager = runFig3(true, 0.0);
    EXPECT_GE(eager.sim.computeCycles, strict.sim.computeCycles);
    EXPECT_LE(eager.sim.stallCycles, strict.sim.stallCycles);
}

TEST(Threshold, ZeroThresholdNearlyEliminatesStalls)
{
    // With unbounded buses and threshold 0.00 every load that may miss
    // is scheduled with the miss latency: stall ~ 0 (§5.2).
    const ir::LoopNest nest = harness::motivatingLoop();
    auto machine = harness::motivatingMachine();
    machine.unboundedRegBuses = true;   // the §5.2 setting
    const auto graph = ddg::Ddg::build(nest, machine);
    cme::CmeAnalysis cme(nest);

    sched::SchedulerOptions opt;
    opt.memoryAware = true;
    opt.missThreshold = 0.0;
    opt.locality = &cme;
    auto r = sched::ClusteredModuloScheduler(graph, machine, opt).run();
    ASSERT_TRUE(r.ok) << r.error;
    const auto res = sim::simulateLoop(graph, r.schedule, machine);
    EXPECT_LT(static_cast<double>(res.stallCycles),
              0.05 * static_cast<double>(res.computeCycles));
}

TEST(Threshold, PromotionOnlyForLikelyMisses)
{
    // At threshold 0.75 only the ~100%-miss loads (none in the RMCA
    // partition; all four in the baseline partition) are promoted.
    const auto rmca = runFig3(true, 0.75);
    EXPECT_EQ(rmca.sched.stats.missScheduledLoads, 0);
    const auto base = runFig3(false, 0.75);
    EXPECT_GE(base.sched.stats.missScheduledLoads, 2);
}

} // namespace
} // namespace mvp
